"""Perf-regression gates for the event-loop hot path (run with -m slow).

Two guarantees:

* The kernel must stay within 30% of the PR-1 baseline recorded in
  ``BENCH_PR1.json`` (``kernel.chain_events_per_sec``).
* The observability layer, when **disabled**, must cost the hot loop
  less than 3% — enforced both structurally (no hooks installed at all)
  and by measurement.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs.attach import ObsAttachment
from repro.sim.engine import Simulator

pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).parent.parent
BASELINE = json.loads((REPO_ROOT / "BENCH_PR1.json").read_text())

#: A >30% drop against the checked-in baseline fails the gate.  The
#: baseline machine and CI runners differ, so this is deliberately a
#: coarse tripwire for algorithmic regressions (an accidental O(n log n)
#: -> O(n^2) slip, a hook left enabled), not a microbenchmark.
BASELINE_FLOOR = 0.70
#: Budget for the disabled-observability overhead on the same machine,
#: same process, interleaved best-of runs.
DISABLED_OVERHEAD = 0.03


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_report", REPO_ROOT / "benchmarks" / "report.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench():
    return _load_bench_module()


def test_chain_throughput_vs_pr1_baseline(bench):
    baseline = BASELINE["kernel"]["chain_events_per_sec"]
    best = max(bench.bench_kernel_chain(total=200_000) for _ in range(3))
    assert best >= BASELINE_FLOOR * baseline, (
        f"kernel chain throughput {best:,.0f} ev/s fell below "
        f"{BASELINE_FLOOR:.0%} of the PR-1 baseline {baseline:,} ev/s"
    )


def test_disabled_attachment_installs_no_hooks(monkeypatch):
    """The <3% budget is enforced structurally first: with every channel
    off, attach_engine must leave the engine's fast path untouched."""
    for name in (
        "REPRO_OBS_TRACE",
        "REPRO_OBS_TRACE_EVENTS",
        "REPRO_OBS_METRICS",
        "REPRO_OBS_PROFILE",
    ):
        monkeypatch.delenv(name, raising=False)
    sim = Simulator()
    ObsAttachment().attach_engine(sim)
    assert sim.trace_pre is None
    assert sim.trace_post is None
    assert sim.profile is None


def test_disabled_observability_overhead_under_budget(bench, monkeypatch):
    for name in (
        "REPRO_OBS_TRACE",
        "REPRO_OBS_TRACE_EVENTS",
        "REPRO_OBS_METRICS",
        "REPRO_OBS_PROFILE",
    ):
        monkeypatch.delenv(name, raising=False)

    # Interleave the two variants so thermal/noise drift hits both, use
    # long runs, and take the best of each: that measures the floor of
    # the code path, not the container's scheduler.
    total = 400_000
    plain = []
    attached = []
    for _ in range(7):
        plain.append(bench.bench_kernel_chain(total=total))
        attached.append(_attached_chain_rate(bench, total))

    overhead = 1.0 - max(attached) / max(plain)
    assert overhead < DISABLED_OVERHEAD, (
        f"disabled observability costs {overhead:.1%} on the event hot "
        f"loop (budget {DISABLED_OVERHEAD:.0%})"
    )


def _attached_chain_rate(bench, total):
    """bench_kernel_chain's ping-pong loop, with a disabled attachment."""
    from time import perf_counter

    sim = Simulator()
    ObsAttachment(trace=False, trace_events=False, metrics=False, profile=False
                  ).attach_engine(sim)
    remaining = [total]

    def ping():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule_in(1.0, ping)

    sim.schedule_in(1.0, ping)
    started = perf_counter()
    sim.run()
    elapsed = perf_counter() - started
    return total / elapsed

"""Observability through the fault-injection campaign path.

The campaign fans its own (scenario × protocol × seed) jobs out under
nested captures; the merged artifacts must ride the campaign report onto
the experiment result, stay in submission order, and reconcile with the
per-run records the resilience report already carries.
"""

import json

import pytest

from repro.experiments import common
from repro.experiments.pool import ExperimentJob, execute_job
from repro.faults import CampaignSpec
from repro.obs.schema import validate_trace_lines

SMALL_SPEC = {
    "name": "obs-small",
    "population": 400,
    "warmup_lifetimes": 0.25,
    "measure_lifetimes": 0.5,
    "protocols": ["min-depth"],
    "seeds": [1],
    "group_size": 2,
    "root_bandwidth": 6.0,
    "scenarios": [
        {"name": "baseline", "faults": []},
        {
            "name": "outage",
            "faults": [
                {"kind": "stub-domain-outage", "domains": 2, "at_frac": 0.6}
            ],
        },
    ],
}
SCALE = 0.1


@pytest.fixture(autouse=True)
def obs_enabled(monkeypatch):
    common.clear_caches()
    monkeypatch.setenv("REPRO_OBS_TRACE", "1")
    monkeypatch.setenv("REPRO_OBS_METRICS", "1")
    yield
    common.clear_caches()


@pytest.fixture(scope="module")
def spec_json():
    return CampaignSpec.from_spec(SMALL_SPEC).canonical_json()


def _run_campaign_job(spec_json, jobs):
    return execute_job(
        ExperimentJob.make(
            "faults_campaign", scale=SCALE, seed=1, spec=spec_json, jobs=jobs
        )
    )


def test_campaign_artifacts_reconcile_with_report(spec_json):
    result = _run_campaign_job(spec_json, jobs=2)
    runs = result.data["runs"]
    units = result.artifacts["metrics"]
    assert len(units) == len(runs) == 2

    # Submission order: metrics units line up 1:1 with the run records.
    for record, unit in zip(runs, units):
        meta = unit["meta"]
        assert meta["kind"] == "recovery"
        assert meta["scenario"] == record["scenario"]
        assert meta["protocol"] == record["protocol"]
        assert meta["seed"] == record["seed"]

        counters = unit["counters"]
        for name, scheme in record["schemes"].items():
            assert counters[f"recovery.episodes.{name}"] == scheme["episodes"]
            assert (
                counters[f"recovery.gap_packets.{name}"] == scheme["gap_packets"]
            )
            assert (
                counters[f"recovery.repaired_packets.{name}"]
                == scheme["repaired_packets"]
            )


def test_campaign_trace_carries_fault_records(spec_json):
    result = _run_campaign_job(spec_json, jobs=1)
    lines = result.artifacts["trace"]
    assert validate_trace_lines(lines) == len(lines) > 0

    fault_labels = {
        json.loads(line)["label"]
        for line in lines
        if json.loads(line)["type"] == "fault"
    }
    assert any("stub-domain-outage" in label for label in fault_labels)

    # The injector's activation count reconciles with the trace.
    outage_unit = result.artifacts["metrics"][1]
    outage_record = result.data["runs"][1]
    assert outage_record["scenario"] == "outage"
    assert outage_unit["counters"]["faults.activations"] == len(
        outage_record["fault_log"]
    )


def test_campaign_artifacts_identical_at_any_jobs(spec_json):
    serial = _run_campaign_job(spec_json, jobs=1)
    common.clear_caches()
    fanned = _run_campaign_job(spec_json, jobs=2)
    assert serial.artifacts["trace"] == fanned.artifacts["trace"]
    assert serial.artifacts["metrics"] == fanned.artifacts["metrics"]

"""Membership service sampling properties."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.overlay.membership import MembershipService
from tests.conftest import make_node


@pytest.fixture()
def service(rng):
    return MembershipService(rng)


def register_many(service, count, attached=True):
    nodes = []
    for i in range(count):
        node = make_node(i + 1)
        node.attached = attached
        service.register(node)
        nodes.append(node)
    return nodes


def test_register_unregister_roundtrip(service):
    node = make_node(1)
    service.register(node)
    assert node in service and len(service) == 1
    service.unregister(node)
    assert node not in service and len(service) == 0


def test_duplicate_registration_rejected(service):
    node = make_node(1)
    service.register(node)
    with pytest.raises(ProtocolError):
        service.register(node)


def test_unknown_unregister_rejected(service):
    with pytest.raises(ProtocolError):
        service.unregister(make_node(1))


def test_sample_distinct_members(service):
    register_many(service, 50)
    picked = service.sample(20)
    assert len(picked) == 20
    assert len({n.member_id for n in picked}) == 20


def test_sample_whole_population_when_small(service):
    nodes = register_many(service, 5)
    assert set(service.sample(50)) == set(nodes)


def test_sample_excludes(service):
    nodes = register_many(service, 10)
    picked = service.sample(10, exclude=[nodes[0], nodes[1]])
    ids = {n.member_id for n in picked}
    assert nodes[0].member_id not in ids
    assert nodes[1].member_id not in ids


def test_attached_only_filter(service):
    attached = register_many(service, 10, attached=True)
    detached = make_node(99)
    detached.attached = False
    service.register(detached)
    picked = service.sample(11)
    assert detached not in picked
    picked_all = service.sample(11, attached_only=False)
    assert len(picked_all) == 11


def test_sample_zero_and_empty(service):
    assert service.sample(0) == []
    assert service.sample(5) == []  # empty population
    assert service.random_member() is None


def test_negative_sample_rejected(service):
    with pytest.raises(ProtocolError):
        service.sample(-1)


def test_sampling_is_roughly_uniform(rng):
    service = MembershipService(rng)
    nodes = register_many(service, 100)
    counts = {n.member_id: 0 for n in nodes}
    for _ in range(2000):
        for node in service.sample(5):
            counts[node.member_id] += 1
    values = np.array(list(counts.values()))
    # each member expects 100 hits; a uniform sampler stays well within 3x
    assert values.min() > 30
    assert values.max() < 300


def test_unregister_swap_pop_keeps_index_consistent(service):
    nodes = register_many(service, 10)
    service.unregister(nodes[0])  # forces swap with the last element
    remaining = service.sample(9)
    assert nodes[0] not in remaining
    assert len(remaining) == 9

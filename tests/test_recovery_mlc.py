"""MLC group selection: loss correlation, partial views, Algorithm 1."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RecoveryError
from repro.overlay.tree import MulticastTree
from repro.recovery.mlc import (
    PartialTreeView,
    group_loss_correlation,
    loss_correlation,
    root_path_ids,
    select_mlc_group,
    select_random_group,
)
from tests.conftest import make_node


def build_two_subtrees():
    """root -> {a, b}; a -> {a1, a2}; b -> {b1}; a1 -> {a1x}."""
    root = make_node(0, cap=10, is_root=True)
    tree = MulticastTree(root)
    nodes = {}
    for mid, cap in [(1, 5), (2, 5), (11, 5), (12, 5), (21, 5), (111, 5)]:
        nodes[mid] = make_node(mid, cap=cap)
        tree.add_member(nodes[mid])
    tree.attach(nodes[1], root)
    tree.attach(nodes[2], root)
    tree.attach(nodes[11], nodes[1])
    tree.attach(nodes[12], nodes[1])
    tree.attach(nodes[21], nodes[2])
    tree.attach(nodes[111], nodes[11])
    return tree, nodes


class TestLossCorrelation:
    def test_root_paths(self):
        tree, nodes = build_two_subtrees()
        assert root_path_ids(nodes[111]) == [0, 1, 11, 111]
        assert root_path_ids(tree.root) == [0]

    def test_same_subtree_correlated(self):
        tree, nodes = build_two_subtrees()
        assert loss_correlation(nodes[11], nodes[12]) == 1  # share edge root->1
        assert loss_correlation(nodes[111], nodes[11]) == 2

    def test_different_subtrees_uncorrelated(self):
        tree, nodes = build_two_subtrees()
        assert loss_correlation(nodes[11], nodes[21]) == 0
        assert loss_correlation(nodes[1], nodes[2]) == 0

    def test_group_sum(self):
        tree, nodes = build_two_subtrees()
        same = group_loss_correlation([nodes[11], nodes[12], nodes[111]])
        spread = group_loss_correlation([nodes[11], nodes[21], nodes[2]])
        assert same > spread


class TestPartialTreeView:
    def test_build_from_members(self):
        tree, nodes = build_two_subtrees()
        view = PartialTreeView.from_members([nodes[111], nodes[21]])
        assert len(view) == 6  # 0,1,11,111,2,21
        assert view.children_of(0) == [1, 2]
        assert view.children_of(1) == [11]
        assert view.levels()[0] == [0]

    def test_exclusion_truncates_paths(self):
        tree, nodes = build_two_subtrees()
        view = PartialTreeView.from_members(
            [nodes[111], nodes[21]], exclude=[11]
        )
        assert 11 not in view
        assert 111 not in view  # below the excluded member
        assert 21 in view

    def test_descendants(self):
        tree, nodes = build_two_subtrees()
        view = PartialTreeView.from_members([nodes[111], nodes[12], nodes[21]])
        assert set(view.descendants_of(1)) == {11, 111, 12}
        assert view.descendants_of(21) == []

    def test_empty_sample_rejected(self):
        with pytest.raises(RecoveryError):
            PartialTreeView.from_members([])

    def test_unknown_member_queries_rejected(self):
        tree, nodes = build_two_subtrees()
        view = PartialTreeView.from_members([nodes[21]])
        with pytest.raises(RecoveryError):
            view.children_of(999)


class TestAlgorithm1:
    def test_group_spans_subtrees(self):
        tree, nodes = build_two_subtrees()
        view = PartialTreeView.from_members(
            [nodes[111], nodes[12], nodes[21]]
        )
        rng = np.random.default_rng(0)
        group = select_mlc_group(view, 2, rng)
        assert len(group) == 2
        # K=2 anchors at level 0 (|L0|=1 < 2 <= |L1|=2): one pick per
        # root-subtree, so the group never collapses into one subtree
        sub_a = {1, 11, 12, 111}
        sub_b = {2, 21}
        assert (group[0] in sub_a) != (group[1] in sub_a)
        assert all(m in sub_a | sub_b for m in group)

    def test_group_excludes_root(self):
        tree, nodes = build_two_subtrees()
        view = PartialTreeView.from_members([nodes[11], nodes[21]])
        for k in (1, 2, 3):
            group = select_mlc_group(view, k, np.random.default_rng(1))
            assert 0 not in group

    def test_group_size_capped_by_view(self):
        tree, nodes = build_two_subtrees()
        view = PartialTreeView.from_members([nodes[21]])
        group = select_mlc_group(view, 5, np.random.default_rng(2))
        assert 0 < len(group) <= 5

    def test_empty_view_yields_empty_group(self):
        view = PartialTreeView(root_id=0)
        assert select_mlc_group(view, 3, np.random.default_rng(0)) == []

    def test_invalid_group_size(self):
        view = PartialTreeView(root_id=0)
        with pytest.raises(RecoveryError):
            select_mlc_group(view, 0, np.random.default_rng(0))

    def test_mlc_beats_random_on_correlation(self):
        """On a lopsided tree, Algorithm 1 yields lower pairwise loss
        correlation than uniform selection (averaged over draws)."""
        root = make_node(0, cap=10, is_root=True)
        tree = MulticastTree(root)
        # one deep chain and two shallow subtrees
        chain = [root]
        next_id = 1
        for _ in range(8):
            node = make_node(next_id, cap=4)
            tree.add_member(node)
            tree.attach(node, chain[-1])
            chain.append(node)
            next_id += 1
        others = []
        for _ in range(2):
            top = make_node(next_id, cap=4)
            next_id += 1
            tree.add_member(top)
            tree.attach(top, root)
            leaf = make_node(next_id, cap=0)
            next_id += 1
            tree.add_member(leaf)
            tree.attach(leaf, top)
            others.extend([top, leaf])
        members = chain[1:] + others
        view = PartialTreeView.from_members(members)
        rng = np.random.default_rng(7)
        by_id = {n.member_id: n for n in members}

        def total(group):
            return group_loss_correlation([by_id[m] for m in group])

        mlc_scores = [
            total(select_mlc_group(view, 3, rng)) for _ in range(50)
        ]
        random_scores = [
            total(select_random_group(view, 3, rng)) for _ in range(50)
        ]
        assert np.mean(mlc_scores) < np.mean(random_scores)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), k=st.integers(1, 6))
def test_algorithm1_properties_on_random_trees(seed, k):
    """Group members are always real view members, distinct, non-root."""
    rng = np.random.default_rng(seed)
    root = make_node(0, cap=5, is_root=True)
    tree = MulticastTree(root)
    members = []
    for mid in range(1, 30):
        node = make_node(mid, cap=3)
        tree.add_member(node)
        candidates = [n for n in tree.attached_nodes() if n.spare_degree > 0]
        tree.attach(node, candidates[int(rng.integers(0, len(candidates)))])
        members.append(node)
    sample_size = int(rng.integers(3, len(members)))
    picks = rng.choice(len(members), size=sample_size, replace=False)
    view = PartialTreeView.from_members([members[i] for i in picks])
    group = select_mlc_group(view, k, rng)
    assert len(group) <= k
    assert len(set(group)) == len(group)
    assert 0 not in group
    assert all(m in view for m in group)

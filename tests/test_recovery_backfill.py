"""Post-rejoin backfill from the new parent's buffer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RecoveryError
from repro.recovery.episode import BackfillSpec, RepairSource, starvation_episode
from repro.recovery.packet_sim import simulate_episode


def src(rate, has_data=True, member_id=1):
    return RepairSource(member_id=member_id, rate_pps=rate, has_data=has_data)


def episode(sources, backfill, gap=150, buffer_s=5.0, striped=True, sim=False):
    fn = simulate_episode if sim else starvation_episode
    return fn(
        gap_packets=gap,
        packet_rate_pps=10.0,
        buffer_ahead_s=buffer_s,
        detect_s=0.5,
        request_hop_s=0.5,
        sources=sources,
        striped=striped,
        backfill=backfill,
    )


def test_backfill_rescues_uncovered_packets():
    no_backfill = episode([src(5.0)], None, buffer_s=30.0)
    backfilled = episode(
        [src(5.0)], BackfillSpec(start_s=15.0, rate_pps=9.0, cutoff_seq=0),
        buffer_s=30.0,
    )
    assert no_backfill.missed_packets > 0
    assert backfilled.missed_packets < no_backfill.missed_packets


def test_cutoff_limits_what_the_parent_can_replay():
    full = episode([], BackfillSpec(15.0, 9.0, cutoff_seq=0), buffer_s=30.0)
    tail_only = episode([], BackfillSpec(15.0, 9.0, cutoff_seq=100), buffer_s=30.0)
    assert full.missed_packets < tail_only.missed_packets
    # packets below the cutoff are unrecoverable without group repair
    assert tail_only.missed_packets >= 100


def test_zero_rate_backfill_is_noop():
    base = episode([src(4.0)], None)
    with_spec = episode([src(4.0)], BackfillSpec(15.0, 0.0, 0))
    assert base.missed_packets == with_spec.missed_packets


def test_backfill_never_hurts():
    for buffer_s in (5.0, 15.0, 27.0):
        base = episode([src(3.0)], None, buffer_s=buffer_s)
        spec = BackfillSpec(15.0, 6.0, cutoff_seq=max(0, int((15 - buffer_s) * 10)))
        improved = episode([src(3.0)], spec, buffer_s=buffer_s)
        assert improved.missed_packets <= base.missed_packets


def test_bigger_buffer_helps_through_backfill():
    """The Fig. 13 mechanism: with the same group, larger buffers expose
    more of the gap to parent replay."""
    missed = []
    for buffer_s in (5.0, 15.0, 27.0):
        cutoff = max(0, int((15.0 - buffer_s) * 10))
        out = episode(
            [src(3.0)],
            BackfillSpec(15.0, 6.0, cutoff_seq=cutoff),
            buffer_s=buffer_s,
        )
        missed.append(out.missed_packets)
    assert missed[0] > missed[1] > missed[2]


def test_validation():
    with pytest.raises(RecoveryError):
        BackfillSpec(start_s=-1.0, rate_pps=1.0, cutoff_seq=0)
    with pytest.raises(RecoveryError):
        BackfillSpec(start_s=1.0, rate_pps=-1.0, cutoff_seq=0)


@settings(max_examples=40, deadline=None)
@given(
    rates=st.lists(st.floats(0.0, 9.0), min_size=0, max_size=4),
    buffer_s=st.floats(1.0, 30.0),
    gap=st.integers(0, 180),
    striped=st.booleans(),
    backfill_rate=st.floats(0.0, 9.0),
    cutoff=st.integers(0, 200),
)
def test_models_agree_with_backfill(rates, buffer_s, gap, striped, backfill_rate, cutoff):
    sources = [src(r, member_id=i + 1) for i, r in enumerate(rates)]
    spec = BackfillSpec(start_s=15.0, rate_pps=backfill_rate, cutoff_seq=cutoff)
    vec = episode(sources, spec, gap=gap, buffer_s=buffer_s, striped=striped)
    sim = episode(sources, spec, gap=gap, buffer_s=buffer_s, striped=striped, sim=True)
    assert vec.missed_packets == sim.missed_packets
    assert vec.repaired_in_time == sim.repaired_in_time
    assert vec.starving_s == pytest.approx(sim.starving_s)
    assert vec.repair_end_s == pytest.approx(sim.repair_end_s, abs=1e-6)

"""The repro-sim command-line front door."""

import pytest

from repro.cli import main


def run_cli(capsys, *args):
    code = main(list(args))
    out = capsys.readouterr().out
    return code, out


BASE = ["--population", "200", "--scale", "0.05", "--seed", "3"]


def test_basic_run(capsys):
    code, out = run_cli(capsys, "--protocol", "rost", *BASE)
    assert code == 0
    assert "Run summary" in out
    assert "disruptions / lifetime" in out
    assert "switches" in out


def test_anatomy_output(capsys):
    code, out = run_cli(capsys, "--protocol", "min-depth", *BASE, "--anatomy")
    assert code == 0
    assert "Tree anatomy" in out
    assert "BTP violations" in out


def test_render_output(capsys):
    code, out = run_cli(
        capsys, "--protocol", "min-depth", *BASE, "--render", "--max-depth", "2"
    )
    assert code == 0
    assert "root (cap" in out


def test_trace_roundtrip(capsys, tmp_path):
    trace = tmp_path / "trace.json"
    code, out = run_cli(
        capsys, "--protocol", "min-depth", *BASE, "--save-trace", str(trace)
    )
    assert code == 0
    assert trace.exists()
    code, out = run_cli(
        capsys,
        "--protocol",
        "rost",
        *BASE,
        "--load-trace",
        str(trace),
    )
    assert code == 0
    assert "Run summary" in out


def test_graceful_flag(capsys):
    code, out = run_cli(capsys, "--protocol", "min-depth", *BASE, "--graceful", "1.0")
    assert code == 0


def test_gossip_membership(capsys):
    code, out = run_cli(
        capsys, "--protocol", "min-depth", *BASE, "--membership", "gossip"
    )
    assert code == 0


def test_unknown_protocol_rejected():
    with pytest.raises(SystemExit):
        main(["--protocol", "bogus"])

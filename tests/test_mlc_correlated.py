"""Correlated loss vs MLC recovery (satellite of the faults subsystem).

A stub-domain outage kills whole recovery groups at once when their
members share a domain; these tests pin down (a) that the injected outage
measurably degrades CER repair against the no-fault baseline, (b) that
the loss-correlation accounting is deterministic per seed, and (c) that
domain-aware MLC selection actually reduces underlay correlation.
"""

import json

import numpy as np
import pytest

from repro.faults import CampaignSpec, run_scenario
from repro.recovery.mlc import (
    PartialTreeView,
    group_underlay_correlation,
    select_mlc_group,
)

SPEC = CampaignSpec.from_spec(
    {
        "name": "correlated-unit",
        "population": 400,
        "warmup_lifetimes": 0.25,
        "measure_lifetimes": 0.75,
        "protocols": ["min-depth"],
        "group_size": 3,
        "root_bandwidth": 6.0,
        "scenarios": [
            {"name": "baseline", "faults": []},
            {
                "name": "outage",
                "faults": [
                    {"kind": "stub-domain-outage", "domains": 3, "at_frac": 0.5}
                ],
            },
        ],
    }
)
SCALE = 0.1
SEED = 3


@pytest.fixture(scope="module")
def baseline_run():
    return run_scenario(SPEC, "baseline", "min-depth", seed=SEED, scale=SCALE)


@pytest.fixture(scope="module")
def outage_run():
    return run_scenario(SPEC, "outage", "min-depth", seed=SEED, scale=SCALE)


def test_outage_fires_and_disrupts(outage_run):
    assert outage_run["fault_log"], "the scheduled outage never fired"
    entry = outage_run["fault_log"][0]
    assert entry["kind"] == "stub-domain-outage"
    assert len(entry["detail"]["domains"]) == 3
    assert entry["detail"]["killed"]
    assert outage_run["fault_disruption_events"] >= 1
    assert "fault:stub-domain-outage" in (
        outage_run["resilience"]["disruption_events"]
    )


def test_outage_degrades_cer_repair(baseline_run, outage_run):
    """Killing the domains hosting recovery nodes must hurt CER repair."""
    name = "cer-k3-b5"
    base = baseline_run["schemes"][name]
    hit = outage_run["schemes"][name]
    assert base["episodes"] > 0 and hit["episodes"] > 0
    assert not np.isnan(base["repair_success_rate"])
    assert not np.isnan(hit["repair_success_rate"])
    assert hit["repair_success_rate"] < base["repair_success_rate"]


def test_correlation_accounting_deterministic_per_seed(outage_run):
    rerun = run_scenario(SPEC, "outage", "min-depth", seed=SEED, scale=SCALE)
    dump = lambda r: json.dumps(r, sort_keys=True, default=str)  # noqa: E731
    assert dump(rerun) == dump(outage_run)
    for name, scheme in outage_run["schemes"].items():
        assert (
            rerun["schemes"][name]["mean_group_domain_correlation"]
            == scheme["mean_group_domain_correlation"]
        ) or (
            np.isnan(scheme["mean_group_domain_correlation"])
            and np.isnan(rerun["schemes"][name]["mean_group_domain_correlation"])
        )


def test_group_underlay_correlation_counts_same_domain_pairs():
    domain_of = {1: 0, 2: 0, 3: 1, 4: -1, 5: -1}.get
    assert group_underlay_correlation([1, 2, 3], domain_of) == 1
    assert group_underlay_correlation([1, 3], domain_of) == 0
    # unknown (negative) domains never count as shared
    assert group_underlay_correlation([4, 5], domain_of) == 0


class _FakeNode:
    """Stand-in for OverlayNode: mlc only walks member_id/parent."""

    def __init__(self, member_id, parent=None):
        self.member_id = member_id
        self.parent = parent


def _synthetic_view():
    """Root 0 with three subtrees; every subtree has a domain-5 member and
    one member in a domain unique to that subtree (6, 7, 8)."""
    root = _FakeNode(0)
    leaves = []
    for child_id, unique_domain_leaf in ((1, 12), (2, 22), (3, 32)):
        child = _FakeNode(child_id, root)
        leaves.append(_FakeNode(child_id * 10 + 1, child))  # domain 5
        leaves.append(_FakeNode(unique_domain_leaf, child))  # unique domain
    return PartialTreeView.from_members(leaves)


_DOMAINS = {1: 5, 11: 5, 12: 6, 2: 5, 21: 5, 22: 7, 3: 5, 31: 5, 32: 8}


def _domain_of(member_id):
    return _DOMAINS.get(member_id, -1)


def test_domain_aware_selection_reduces_underlay_correlation():
    view = _synthetic_view()
    plain_correlations = []
    aware_correlations = []
    for seed in range(20):
        plain = select_mlc_group(view, 3, np.random.default_rng(seed))
        aware = select_mlc_group(
            view, 3, np.random.default_rng(seed), domain_of=_domain_of
        )
        assert len(plain) == 3 and len(aware) == 3
        plain_correlations.append(group_underlay_correlation(plain, _domain_of))
        aware_correlations.append(group_underlay_correlation(aware, _domain_of))
    # every subtree offers a fresh domain, so the aware pick never collides
    assert all(c == 0 for c in aware_correlations)
    # ...whereas the paper's domain-blind Algorithm 1 regularly does
    assert any(c > 0 for c in plain_correlations)


def test_domain_aware_scheme_not_more_correlated(outage_run):
    """End-to-end: the -da scheme's selected groups share domains no more
    often than plain CER on the identical run."""
    plain = outage_run["schemes"]["cer-k3-b5"]
    aware = outage_run["schemes"]["cer-k3-b5-da"]
    plain_corr = plain["mean_group_domain_correlation"]
    aware_corr = aware["mean_group_domain_correlation"]
    assert not np.isnan(plain_corr) and not np.isnan(aware_corr)
    assert aware_corr <= plain_corr

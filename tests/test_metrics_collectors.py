"""ChurnMetrics window accounting and derived metrics."""

import math

import pytest

from repro.metrics.collectors import ChurnMetrics, TimeSeries


def make_metrics(start=100.0, end=200.0, mean_lifetime=50.0):
    return ChurnMetrics(start, end, mean_lifetime_s=mean_lifetime)


class TestWindowing:
    def test_events_outside_window_ignored(self):
        m = make_metrics()
        m.record_disruptions(50.0, 10)  # before warm-up
        m.record_disruptions(150.0, 3)
        m.record_disruptions(250.0, 7)  # after the window
        assert m.disruption_events == 3

    def test_departures_counted_in_window_only(self):
        m = make_metrics()
        m.record_departure(150.0, disruptions=2, optimization_reconnections=1)
        m.record_departure(50.0, disruptions=9, optimization_reconnections=9)
        assert m.departures_in_window == 1
        assert m.disruptions_per_departed == [2]

    def test_partial_observations_excluded_from_distribution(self):
        m = make_metrics()
        m.record_departure(150.0, 5, 0, full_observation=False)
        assert m.departures_in_window == 1
        assert m.disruptions_per_departed == []


class TestPopulationIntegral:
    def test_constant_population(self):
        m = make_metrics()
        m.record_population(100.0, 10)
        m.record_population(200.0, 10)
        assert m.node_seconds == pytest.approx(1000.0)
        assert m.mean_population == pytest.approx(10.0)

    def test_step_change(self):
        m = make_metrics()
        m.record_population(100.0, 10)
        m.record_population(150.0, 20)
        m.record_population(200.0, 20)
        assert m.node_seconds == pytest.approx(10 * 50 + 20 * 50)

    def test_clamps_outside_window(self):
        m = make_metrics()
        m.record_population(0.0, 10)  # before the window: sets level only
        m.record_population(300.0, 10)
        assert m.node_seconds == pytest.approx(1000.0)


class TestDerivedMetrics:
    def test_rate_based_per_lifetime_disruptions(self):
        m = make_metrics(mean_lifetime=50.0)
        m.record_population(100.0, 10)
        m.record_population(200.0, 10)
        m.record_disruptions(150.0, 20)
        # 20 events over 1000 node-seconds = 0.02/s; per 50 s lifetime = 1.0
        assert m.avg_disruptions_per_node == pytest.approx(1.0)

    def test_rate_based_overhead(self):
        m = make_metrics(mean_lifetime=50.0)
        m.record_population(100.0, 10)
        m.record_population(200.0, 10)
        m.record_optimization_reconnections(150.0, 10)
        assert m.avg_optimization_reconnections_per_node == pytest.approx(0.5)

    def test_nan_without_node_seconds(self):
        m = make_metrics()
        assert math.isnan(m.disruption_rate_per_node_second())

    def test_tree_samples(self):
        m = make_metrics()
        m.record_tree_sample(100.0, 2.0)
        m.record_tree_sample(200.0, 4.0)
        assert m.avg_service_delay_ms == pytest.approx(150.0)
        assert m.avg_stretch == pytest.approx(3.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ChurnMetrics(10.0, 10.0)


class TestTimeSeries:
    def test_append_and_pairs(self):
        ts = TimeSeries()
        ts.append(1.0, 10.0)
        ts.append(2.0, 20.0)
        assert len(ts) == 2
        assert ts.as_pairs() == [(1.0, 10.0), (2.0, 20.0)]

    def test_time_must_not_go_backwards(self):
        ts = TimeSeries()
        ts.append(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.append(4.0, 2.0)

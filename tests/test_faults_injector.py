"""Engine-level fault injection into live churn simulations."""

import dataclasses

import numpy as np
import pytest

from repro.errors import FaultError
from repro.faults import (
    ChurnSurge,
    DegradedOracle,
    FaultInjector,
    FaultSchedule,
    FlashCrowd,
    LinkDegradation,
    NodeCrash,
    StubDomainOutage,
)
from repro.metrics.collectors import ResilienceMetrics
from repro.protocols import PROTOCOLS
from repro.simulation.churn import ChurnSimulation
from repro.workload.generator import ChurnWorkload
from repro.workload.session import RootSpec, Session
from tests.conftest import small_sim_config


def build_workload(config, sessions, horizon):
    return ChurnWorkload(
        config=config.workload,
        root=RootSpec(bandwidth=config.workload.root_bandwidth, underlay_node=6),
        sessions=sorted(sessions, key=lambda s: s.arrival_s),
        horizon_s=horizon,
    )


def make_sessions(count, arrival, lifetime, bandwidth, start_id=1, node=6):
    return [
        Session(
            member_id=start_id + i,
            arrival_s=arrival,
            lifetime_s=lifetime,
            bandwidth=bandwidth,
            underlay_node=node + i % 48,
        )
        for i in range(count)
    ]


def run_faulted(
    faults,
    sessions,
    *,
    seed=9,
    horizon=3000.0,
    root_bandwidth=None,
    protocol="min-depth",
    schedule_seed=1,
):
    cfg = small_sim_config(population=100, seed=seed)
    if root_bandwidth is not None:
        cfg = dataclasses.replace(
            cfg,
            workload=dataclasses.replace(
                cfg.workload, root_bandwidth=root_bandwidth
            ),
        )
    workload = build_workload(cfg, sessions, horizon)
    sim = ChurnSimulation(
        cfg, PROTOCOLS[protocol], workload=workload, check_invariants=True
    )
    resilience = ResilienceMetrics(0.0, horizon)
    injector = FaultInjector(
        FaultSchedule(seed=schedule_seed, faults=tuple(faults))
    ).bind(sim, resilience=resilience)
    sim.run()
    resilience.finish(horizon)
    return sim, injector, resilience


def test_node_crash_kills_count():
    members = make_sessions(30, arrival=0.0, lifetime=5000.0, bandwidth=2.0)
    sim, injector, res = run_faulted(
        [NodeCrash(at_s=500.0, count=5)], members, root_bandwidth=4.0
    )
    assert len(injector.log) == 1
    t, kind, detail = injector.log[0]
    assert t == 500.0
    assert kind == "node-crash"
    assert detail["selector"] == "random"
    assert len(detail["killed"]) == 5
    # killed members are gone for good; everyone else is re-attached
    assert sim.tree.num_attached == 26  # 30 - 5 victims + root
    assert "fault:node-crash" in res.disruption_events
    assert res.faults_fired == [(500.0, "node-crash", detail)]
    sim.tree.check_invariants()


def test_node_crash_explicit_member_ids():
    members = make_sessions(20, arrival=0.0, lifetime=5000.0, bandwidth=2.0)
    sim, injector, _ = run_faulted(
        [NodeCrash(at_s=300.0, member_ids=(3, 7, 11))], members
    )
    assert injector.log[0][2]["killed"] == [3, 7, 11]
    assert sim.tree.num_attached == 18  # 20 - 3 + root


def test_stale_natural_departures_noop_after_kill():
    # victims' original departure events fire later and must be ignored
    members = make_sessions(20, arrival=0.0, lifetime=1000.0, bandwidth=2.0)
    sim, injector, _ = run_faulted(
        [NodeCrash(at_s=500.0, count=5)], members, horizon=2000.0
    )
    assert len(injector.log[0][2]["killed"]) == 5
    assert sim.tree.num_attached == 1  # everyone is gone, nothing crashed
    sim.tree.check_invariants()


def test_injected_kill_beats_same_instant_departure():
    # the fault timer runs at higher priority than the natural departure,
    # so member 1's disruption is attributed to the fault, not to churn
    members = make_sessions(10, arrival=0.0, lifetime=500.0, bandwidth=2.0)
    _, injector, res = run_faulted(
        [NodeCrash(at_s=500.0, member_ids=(1,))], members, horizon=1500.0
    )
    assert injector.log[0][2]["killed"] == [1]
    assert res.disruption_events["fault:node-crash"] == 1
    assert res.disruption_events.get("churn", 0) == 9


def test_node_crash_mttr_recorded_on_deep_tree():
    members = make_sessions(30, arrival=0.0, lifetime=5000.0, bandwidth=2.0)
    _, injector, res = run_faulted(
        [NodeCrash(at_s=800.0, selector="root-children", count=2)],
        members,
        root_bandwidth=4.0,
    )
    assert injector.log[0][2]["selector"] == "root-children"
    # the root's children have descendants: their orphans repaired, timed
    samples = res.repair_times.get("fault:node-crash")
    assert samples, "expected repair-time samples for the injected crash"
    assert all(t > 0 for t in samples)
    assert res.mttr_s("fault:node-crash") > 0
    assert res.detached_seconds > 0


def test_stub_domain_outage_kills_whole_domains():
    members = make_sessions(40, arrival=0.0, lifetime=5000.0, bandwidth=2.0)
    sim, injector, res = run_faulted(
        [StubDomainOutage(at_s=600.0, domain_ids=(2,))], members
    )
    node_domain = sim.topology.node_domain
    expected = sorted(
        s.member_id
        for s in sim.workload.sessions
        if int(node_domain[s.underlay_node]) == 2
    )
    detail = injector.log[0][2]
    assert detail["domains"] == [2]
    assert expected, "test workload must place members in domain 2"
    assert detail["killed"] == expected
    assert res.disruption_events["fault:stub-domain-outage"] == len(expected)


def test_stub_domain_outage_picks_most_populated():
    members = make_sessions(40, arrival=0.0, lifetime=5000.0, bandwidth=2.0)
    sim, injector, _ = run_faulted(
        [StubDomainOutage(at_s=600.0, domains=2)], members
    )
    node_domain = sim.topology.node_domain
    population = {}
    for s in sim.workload.sessions:
        domain = int(node_domain[s.underlay_node])
        population[domain] = population.get(domain, 0) + 1
    ranked = sorted(population, key=lambda d: (-population[d], d))
    assert injector.log[0][2]["domains"] == ranked[:2]


def test_flash_crowd_spawns_fresh_members():
    stable = make_sessions(5, arrival=0.0, lifetime=5000.0, bandwidth=2.0)
    horizon = 1000.0
    sim, injector, _ = run_faulted(
        [FlashCrowd(at_s=1.0, size=50, spread_s=0.0, bandwidth=2.0)],
        stable,
        horizon=horizon,
    )
    assert injector.log[0][2] == {"arrivals": 50}
    burst = [s for mid, s in injector._sessions.items() if mid > 5]
    assert len(burst) == 50
    assert all(s.bandwidth == 2.0 for s in burst)
    assert min(s.member_id for s in burst) == 6  # fresh ids after the workload's
    # everyone sits under the 100-slot root, so attachment is pure session
    # arithmetic: stable members + burst members still alive at the horizon
    alive = sum(1 for s in burst if s.departure_s > horizon)
    assert sim.tree.num_attached == 1 + 5 + alive
    sim.tree.check_invariants()


def test_churn_surge_compresses_departures():
    members = make_sessions(30, arrival=0.0, lifetime=2600.0, bandwidth=2.0)
    sim, injector, res = run_faulted(
        [ChurnSurge(at_s=500.0, lifetime_factor=0.1)], members, horizon=2000.0
    )
    # remaining 2100 s compress to 210 s: everyone dies at t=710 < horizon,
    # long before their original t=2600 departures (which then no-op)
    assert injector.log[0][2]["compressed"] == 30
    assert sim.tree.num_attached == 1
    assert res.disruption_events["fault:churn-surge"] == 30
    assert "churn" not in res.disruption_events


def test_churn_surge_fraction_spares_some():
    members = make_sessions(30, arrival=0.0, lifetime=2600.0, bandwidth=2.0)
    sim, injector, _ = run_faulted(
        [ChurnSurge(at_s=500.0, lifetime_factor=0.1, fraction=0.5)],
        members,
        horizon=2000.0,
    )
    compressed = injector.log[0][2]["compressed"]
    assert 0 < compressed < 30
    # the spared members' original departures (t=2600) are past the horizon
    assert sim.tree.num_attached == 31 - compressed


def test_link_degradation_window_and_stream_loss():
    members = make_sessions(30, arrival=0.0, lifetime=5000.0, bandwidth=2.0)
    sim, injector, res = run_faulted(
        [
            LinkDegradation(
                at_s=400.0, duration_s=100.0, delay_factor=4.0, loss_rate=0.5
            )
        ],
        members,
        horizon=2000.0,
    )
    detail = injector.log[0][2]
    assert detail["affected_members"] == 30  # global window hits everyone
    assert isinstance(sim.oracle, DegradedOracle)
    assert sim.ctx.oracle is sim.oracle
    assert sim.oracle.active_windows == 0  # the window closed after 100 s
    assert res.stream_loss_seconds == pytest.approx(100.0 * 30 * 0.5)
    ratio = res.delivered_data_ratio(30 * 2000.0)
    assert 0.9 < ratio < 1.0


def test_degraded_oracle_scopes_and_stacks():
    cfg = small_sim_config()
    workload = build_workload(
        cfg, make_sessions(1, arrival=0.0, lifetime=100.0, bandwidth=2.0), 200.0
    )
    sim = ChurnSimulation(cfg, PROTOCOLS["min-depth"], workload=workload)
    topology, oracle = sim.topology, sim.oracle
    stubs = list(topology.stub_nodes)
    u = stubs[0]
    du = int(topology.node_domain[u])
    v = next(s for s in stubs if int(topology.node_domain[s]) != du)
    x, y = [
        s
        for s in stubs
        if int(topology.node_domain[s]) not in (du, int(topology.node_domain[v]))
    ][:2]

    proxy = DegradedOracle(oracle, topology)
    base_uv = oracle.delay_ms(u, v)
    base_xy = oracle.delay_ms(x, y)
    assert proxy.delay_ms(u, v) == base_uv

    window = proxy.activate({du}, 3.0)
    assert proxy.delay_ms(u, v) == pytest.approx(3.0 * base_uv)
    assert proxy.delay_ms(x, y) == pytest.approx(base_xy)  # untouched path

    global_window = proxy.activate(None, 2.0)  # factors stack
    assert proxy.delay_ms(u, v) == pytest.approx(6.0 * base_uv)
    assert proxy.delay_ms(x, y) == pytest.approx(2.0 * base_xy)

    proxy.deactivate(window)
    proxy.deactivate(global_window)
    assert proxy.active_windows == 0
    assert proxy.delay_ms(u, v) == base_uv
    # the wrapped oracle itself was never touched
    assert oracle.delay_ms(u, v) == base_uv


def test_injection_is_deterministic():
    def run_once():
        members = make_sessions(40, arrival=0.0, lifetime=4000.0, bandwidth=2.0)
        return run_faulted(
            [
                NodeCrash(at_s=600.0, count=8),
                ChurnSurge(at_s=900.0, lifetime_factor=0.5, fraction=0.5),
            ],
            members,
            horizon=2500.0,
            root_bandwidth=6.0,
        )

    _, injector_a, res_a = run_once()
    _, injector_b, res_b = run_once()
    assert injector_a.log == injector_b.log
    assert res_a.as_dict() == res_b.as_dict()


def test_bind_twice_raises():
    cfg = small_sim_config()
    workload = build_workload(
        cfg, make_sessions(1, arrival=0.0, lifetime=100.0, bandwidth=2.0), 200.0
    )
    sim = ChurnSimulation(cfg, PROTOCOLS["min-depth"], workload=workload)
    injector = FaultInjector(FaultSchedule())
    injector.bind(sim)
    with pytest.raises(FaultError):
        injector.bind(sim)

"""Unit tests for the invariant registry and the InvariantChecker.

The end-to-end "a seeded bug trips its checker" demonstrations live in
``tests/fuzz/test_mutation_smoke.py``; this module covers the registry
contract, checker lifecycle/configuration, and the pure-structure
invariants that can be exercised by corrupting a tree directly.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.errors import InvariantError, SimulationError
from repro.invariants import (
    LAYERS,
    REGISTRY,
    Invariant,
    InvariantChecker,
    InvariantViolation,
    all_invariants,
    get_invariant,
    invariants_for,
    register_invariant,
)
from repro.overlay.tree import MulticastTree
from repro.protocols import PROTOCOLS
from repro.sim.engine import Simulator
from repro.simulation.churn import ChurnSimulation
from tests.conftest import make_node, small_sim_config

EXPECTED_INVARIANTS = {
    "sim-clock-monotonic",
    "sim-no-fire-after-cancel",
    "sim-queue-accounting",
    "tree-acyclicity",
    "tree-single-parent",
    "tree-degree-cap",
    "tree-attachment",
    "tree-orphan-recovery",
    "rost-switch-btp-order",
    "rost-lock-no-double-grant",
    "recovery-episode-conservation",
    "recovery-residual-covers-rate",
    "recovery-backfill-window",
    "fault-atomic-cofail",
}


# -- registry ------------------------------------------------------------------


def test_builtin_suite_is_registered():
    assert set(REGISTRY) == EXPECTED_INVARIANTS
    for inv in all_invariants():
        assert inv.layer in LAYERS
        assert inv.description


def test_suite_spans_every_layer_with_both_kinds():
    layers = {inv.layer for inv in all_invariants()}
    assert layers == set(LAYERS)
    instrumented = {inv.name for inv in all_invariants() if inv.instrumented}
    quiescent = {inv.name for inv in all_invariants() if not inv.instrumented}
    assert "sim-clock-monotonic" in instrumented
    assert "tree-acyclicity" in quiescent
    assert instrumented | quiescent == EXPECTED_INVARIANTS


def test_invariants_for_filters_by_layer():
    tree_only = invariants_for(["tree"])
    assert {inv.layer for inv in tree_only} == {"tree"}
    assert {inv.name for inv in tree_only} == {
        name for name in EXPECTED_INVARIANTS if name.startswith("tree-")
    }
    assert invariants_for(None) == all_invariants()
    with pytest.raises(ValueError, match="unknown invariant layers"):
        invariants_for(["tree", "nonsense"])


def test_get_invariant_unknown_name():
    assert get_invariant("tree-acyclicity").layer == "tree"
    with pytest.raises(KeyError, match="unknown invariant"):
        get_invariant("no-such-invariant")


def test_duplicate_and_invalid_registrations_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        register_invariant(
            Invariant(name="tree-acyclicity", layer="tree", description="dup")
        )
    with pytest.raises(ValueError, match="unknown invariant layer"):
        register_invariant(
            Invariant(name="x-fresh", layer="kernel", description="bad layer")
        )
    with pytest.raises(ValueError, match="non-empty"):
        register_invariant(Invariant(name="", layer="sim", description="unnamed"))
    assert "x-fresh" not in REGISTRY


def test_violation_str_and_as_dict():
    violation = InvariantViolation(
        invariant="tree-degree-cap",
        layer="tree",
        time=12.5,
        message="member 7 has 3 children, cap 2",
        node_ids=(7,),
        snapshot={"children": 3, "out_degree_cap": 2},
    )
    text = str(violation)
    assert "[tree] tree-degree-cap violated at t=12.500" in text
    assert "members=[7]" in text
    as_dict = violation.as_dict()
    assert as_dict["node_ids"] == [7]
    assert as_dict["snapshot"]["children"] == 3
    import json

    json.dumps(as_dict)  # must be JSON-serializable as-is


# -- checker lifecycle ---------------------------------------------------------


def bare_target():
    sim = Simulator()
    tree = MulticastTree(make_node(0, bandwidth=10.0, cap=10, is_root=True))
    return SimpleNamespace(sim=sim, tree=tree, disruption_observer=None)


def test_checker_rejects_bad_configuration():
    with pytest.raises(SimulationError, match="interval_events"):
        InvariantChecker(interval_events=0)
    with pytest.raises(SimulationError, match="cannot attach"):
        InvariantChecker().attach(object())
    checker = InvariantChecker()
    checker.attach(bare_target())
    with pytest.raises(SimulationError, match="one simulation"):
        checker.attach(bare_target())


def test_layer_restriction_limits_the_suite():
    checker = InvariantChecker(layers=["sim", "tree"])
    names = {inv.name for inv in checker.invariants}
    assert names == {
        n
        for n in EXPECTED_INVARIANTS
        if n.startswith("sim-") or n.startswith("tree-")
    }


def test_strict_checker_raises_with_structured_violation():
    checker = InvariantChecker()
    target = bare_target()
    checker.attach(target)
    orphan = make_node(1)
    orphan.ever_attached = True
    target.tree.add_member(orphan)
    with pytest.raises(InvariantError) as excinfo:
        checker.finalize()
    assert excinfo.value.violation.invariant == "tree-orphan-recovery"
    assert excinfo.value.violation.node_ids == (1,)


def test_violation_names_deduplicates_in_first_seen_order():
    checker = InvariantChecker(strict=False)
    checker.attach(bare_target())
    checker._record("tree-degree-cap", 1.0, "first")
    checker._record("sim-queue-accounting", 2.0, "second")
    checker._record("tree-degree-cap", 3.0, "repeat")
    assert checker.violation_names == ["tree-degree-cap", "sim-queue-accounting"]
    assert len(checker.violations) == 3


def test_clean_churn_run_has_zero_violations():
    cfg = small_sim_config(population=50, seed=21)
    checker = InvariantChecker(strict=False, interval_events=32)
    sim = ChurnSimulation(cfg, PROTOCOLS["rost"], check_invariants=checker)
    assert sim.invariant_checker is checker  # instance used as-is
    sim.run()
    assert checker.violations == []
    assert checker.sweeps > 0
    assert checker.events_seen > 0


def test_check_invariants_true_attaches_strict_checker():
    cfg = small_sim_config(population=40, seed=22)
    sim = ChurnSimulation(cfg, PROTOCOLS["min-depth"], check_invariants=True)
    assert sim.invariant_checker is not None
    assert sim.invariant_checker.strict
    sim.run()  # a clean run must not raise
    assert sim.invariant_checker.violations == []


# -- pure-structure invariants via direct corruption ---------------------------


def test_parent_cycle_is_detected():
    checker = InvariantChecker(strict=False)
    target = bare_target()
    checker.attach(target)
    tree = target.tree
    a, b = make_node(1), make_node(2)
    tree.add_member(a)
    tree.add_member(b)
    tree.attach(a, tree.root)
    tree.attach(b, a)
    # A buggy splice points a's parent link back down at its child.
    b.children.append(a)
    a.parent = b
    checker.finalize()
    names = checker.violation_names
    assert "tree-acyclicity" in names
    assert "tree-single-parent" in names


def test_attachment_flag_drift_is_detected():
    checker = InvariantChecker(strict=False)
    target = bare_target()
    checker.attach(target)
    tree = target.tree
    a = make_node(1)
    tree.add_member(a)
    tree.attach(a, tree.root)
    a.attached = False  # reachable from the root yet flagged detached
    checker.finalize()
    assert "tree-attachment" in checker.violation_names


def test_queue_accounting_drift_is_detected():
    checker = InvariantChecker(strict=False)
    target = bare_target()
    checker.attach(target)
    target.sim.schedule_at(10.0, lambda: None)
    target.sim.event_queue._live += 1  # seeded bookkeeping bug
    checker.finalize()
    assert "sim-queue-accounting" in checker.violation_names

"""Experiment infrastructure: settings, caches, factories."""

import pytest

from repro.experiments import common
from repro.experiments.common import (
    SweepSettings,
    churn_run,
    default_probe,
    protocol_factory,
    shared_topology,
    shared_workload,
)
from repro.protocols.rost import RostProtocol


@pytest.fixture(autouse=True)
def fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


TINY = SweepSettings(scale=0.02, seed=3)


def test_settings_build_scaled_configs():
    config = TINY.config(2000)
    assert config.workload.target_population == 40
    assert config.topology.total_nodes < 15600


def test_shared_topology_cached():
    config = TINY.config(2000)
    first = shared_topology(config)
    second = shared_topology(config)
    assert first[0] is second[0]
    assert first[1] is second[1]


def test_shared_workload_cached_and_probe_keyed():
    config = TINY.config(2000)
    base1 = shared_workload(config)
    base2 = shared_workload(config)
    assert base1 is base2
    probe = default_probe(TINY, 2000)
    probed = shared_workload(config, probe=probe)
    assert probed is not base1
    assert any(s.member_id == probe.member_id for s in probed.sessions)


def test_shared_workload_keyed_by_topology():
    # scale 0.02 x size 5000 and scale 0.05 x size 2000 coincide on every
    # workload field (100 members, same derived seed) but their underlays
    # differ — the cache must not hand one's attach nodes to the other.
    small = SweepSettings(scale=0.02, seed=3).config(5000)
    large = SweepSettings(scale=0.05, seed=3).config(2000)
    assert small.workload == large.workload
    assert small.topology != large.topology
    w_small = shared_workload(small)
    w_large = shared_workload(large)
    assert w_small is not w_large
    stub_ids = set(shared_topology(large)[0].stub_nodes)
    assert all(s.underlay_node in stub_ids for s in w_large.sessions)


def test_churn_run_cached_by_full_key():
    a = churn_run("min-depth", 2000, TINY)
    b = churn_run("min-depth", 2000, TINY)
    assert a is b
    c = churn_run("min-depth", 2000, TINY, switch_interval_s=480.0)
    assert c is not a


def test_protocol_factory_plain():
    from repro.protocols import PROTOCOLS

    assert protocol_factory("min-depth") is PROTOCOLS["min-depth"]


def test_protocol_factory_rost_flags(tiny_topology, tiny_oracle):
    from tests.protocol_harness import Harness

    factory = protocol_factory("rost", bandwidth_guard=False)
    harness = Harness(tiny_topology, tiny_oracle)
    proto = factory(harness.ctx)
    assert isinstance(proto, RostProtocol)
    assert proto.bandwidth_guard is False


def test_protocol_factory_rejects_flags_on_baselines():
    with pytest.raises(ValueError):
        protocol_factory("min-depth", bandwidth_guard=False)


def test_rost_flag_runs_not_conflated_in_cache():
    default = churn_run("rost", 2000, TINY)
    ablated = churn_run("rost", 2000, TINY, rost_flags={"promote_into_spare": False})
    assert default is not ablated

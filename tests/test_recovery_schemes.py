"""Recovery scheme descriptors."""

import pytest

from repro.errors import RecoveryError
from repro.recovery.schemes import RecoveryScheme, cer_scheme, single_source_scheme


def test_cer_scheme_defaults():
    scheme = cer_scheme(3)
    assert scheme.use_mlc and scheme.striped and scheme.eln
    assert scheme.group_size == 3
    assert scheme.buffer_s == 5.0
    assert "cer-k3" in scheme.name


def test_single_source_scheme():
    scheme = single_source_scheme(2)
    assert not scheme.use_mlc and not scheme.striped
    assert scheme.group_size == 2


def test_names_unique_across_grid():
    names = {
        s.name
        for s in (
            [cer_scheme(k) for k in (1, 2, 3, 4)]
            + [cer_scheme(2, buffer_s=10.0)]
            + [cer_scheme(2, eln=False)]
            + [single_source_scheme(k) for k in (1, 2, 3)]
            + [single_source_scheme(2, use_mlc=True)]
        )
    }
    assert len(names) == 10


def test_validation():
    with pytest.raises(RecoveryError):
        RecoveryScheme("x", group_size=0, use_mlc=True, striped=True, buffer_s=5.0)
    with pytest.raises(RecoveryError):
        RecoveryScheme("x", group_size=1, use_mlc=True, striped=True, buffer_s=0.0)

"""Lock-set computation and atomic acquisition."""

import pytest

from repro.protocols.rost.locking import switch_lock_set, try_lock_all
from tests.conftest import make_node


def build_family():
    gp = make_node(1, cap=3)
    parent = make_node(2, cap=3)
    initiator = make_node(3, cap=3)
    sibling = make_node(4, cap=3)
    child = make_node(5, cap=3)
    parent.parent = gp
    gp.children = [parent]
    initiator.parent = parent
    sibling.parent = parent
    parent.children = [initiator, sibling]
    child.parent = initiator
    initiator.children = [child]
    return gp, parent, initiator, sibling, child


def test_lock_set_contents():
    gp, parent, initiator, sibling, child = build_family()
    involved = switch_lock_set(initiator)
    assert set(involved) == {initiator, parent, gp, sibling, child}


def test_lock_set_requires_grandparent():
    node = make_node(1)
    node.parent = make_node(2)
    with pytest.raises(ValueError):
        switch_lock_set(node)


def test_try_lock_all_success():
    gp, parent, initiator, sibling, child = build_family()
    nodes = switch_lock_set(initiator)
    assert try_lock_all(nodes, now=0.0, until=5.0)
    assert all(n.is_locked(1.0) for n in nodes)
    assert all(not n.is_locked(5.0) for n in nodes)


def test_try_lock_all_atomic_failure():
    gp, parent, initiator, sibling, child = build_family()
    sibling.lock(10.0)
    nodes = [initiator, parent, gp, child]
    assert not try_lock_all(nodes + [sibling], now=0.0, until=5.0)
    # nothing else was locked
    assert all(not n.is_locked(1.0) for n in nodes)


def test_expired_locks_do_not_block():
    nodes = [make_node(i) for i in range(3)]
    nodes[0].lock(5.0)
    assert try_lock_all(nodes, now=6.0, until=10.0)

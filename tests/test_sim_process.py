"""Timer and PeriodicProcess behaviour."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, Timer


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 5.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run_until(10.0)
        assert fired == [5.0]
        assert not timer.pending

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 5.0, lambda: fired.append(1))
        timer.start()
        timer.cancel()
        sim.run_until(10.0)
        assert fired == []

    def test_restart_pushes_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 5.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run_until(3.0)
        timer.restart()
        sim.run_until(20.0)
        assert fired == [8.0]

    def test_double_start_rejected(self):
        sim = Simulator()
        timer = Timer(sim, 5.0, lambda: None)
        timer.start()
        with pytest.raises(SimulationError):
            timer.start()

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Timer(Simulator(), -1.0, lambda: None)

    def test_restart_after_fire(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run_until(3.0)
        timer.restart()
        sim.run_until(10.0)
        assert fired == [2.0, 5.0]


class TestPeriodicProcess:
    def test_fires_every_interval(self):
        sim = Simulator()
        fired = []
        proc = PeriodicProcess(sim, 2.0, lambda: fired.append(sim.now))
        proc.start()
        sim.run_until(9.0)
        assert fired == [2.0, 4.0, 6.0, 8.0]

    def test_initial_delay_override(self):
        sim = Simulator()
        fired = []
        proc = PeriodicProcess(sim, 5.0, lambda: fired.append(sim.now))
        proc.start(initial_delay=1.0)
        sim.run_until(12.0)
        assert fired == [1.0, 6.0, 11.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        fired = []
        proc = PeriodicProcess(sim, 2.0, lambda: fired.append(sim.now))
        proc.start()
        sim.run_until(5.0)
        proc.stop()
        sim.run_until(20.0)
        assert fired == [2.0, 4.0]
        assert not proc.running

    def test_action_may_stop_its_own_process(self):
        sim = Simulator()
        fired = []
        proc = PeriodicProcess(sim, 1.0, lambda: (fired.append(sim.now), proc.stop()))
        proc.start()
        sim.run_until(10.0)
        assert fired == [1.0]

    def test_jitter_shifts_rounds(self):
        sim = Simulator()
        fired = []
        proc = PeriodicProcess(
            sim, 10.0, lambda: fired.append(sim.now), jitter=lambda: -2.0
        )
        proc.start()
        sim.run_until(30.0)
        # every round happens 2 s early relative to the nominal period
        assert fired == [8.0, 16.0, 24.0]

    def test_double_start_rejected(self):
        sim = Simulator()
        proc = PeriodicProcess(sim, 1.0, lambda: None)
        proc.start()
        with pytest.raises(SimulationError):
            proc.start()

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicProcess(Simulator(), 0.0, lambda: None)

    def test_stop_is_idempotent(self):
        proc = PeriodicProcess(Simulator(), 1.0, lambda: None)
        proc.stop()
        proc.stop()

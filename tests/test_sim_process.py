"""Timer and PeriodicProcess behaviour."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, Timer


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 5.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run_until(10.0)
        assert fired == [5.0]
        assert not timer.pending

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 5.0, lambda: fired.append(1))
        timer.start()
        timer.cancel()
        sim.run_until(10.0)
        assert fired == []

    def test_restart_pushes_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 5.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run_until(3.0)
        timer.restart()
        sim.run_until(20.0)
        assert fired == [8.0]

    def test_double_start_rejected(self):
        sim = Simulator()
        timer = Timer(sim, 5.0, lambda: None)
        timer.start()
        with pytest.raises(SimulationError):
            timer.start()

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Timer(Simulator(), -1.0, lambda: None)

    def test_restart_after_fire(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run_until(3.0)
        timer.restart()
        sim.run_until(10.0)
        assert fired == [2.0, 5.0]


class TestPeriodicProcess:
    def test_fires_every_interval(self):
        sim = Simulator()
        fired = []
        proc = PeriodicProcess(sim, 2.0, lambda: fired.append(sim.now))
        proc.start()
        sim.run_until(9.0)
        assert fired == [2.0, 4.0, 6.0, 8.0]

    def test_initial_delay_override(self):
        sim = Simulator()
        fired = []
        proc = PeriodicProcess(sim, 5.0, lambda: fired.append(sim.now))
        proc.start(initial_delay=1.0)
        sim.run_until(12.0)
        assert fired == [1.0, 6.0, 11.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        fired = []
        proc = PeriodicProcess(sim, 2.0, lambda: fired.append(sim.now))
        proc.start()
        sim.run_until(5.0)
        proc.stop()
        sim.run_until(20.0)
        assert fired == [2.0, 4.0]
        assert not proc.running

    def test_action_may_stop_its_own_process(self):
        sim = Simulator()
        fired = []
        proc = PeriodicProcess(sim, 1.0, lambda: (fired.append(sim.now), proc.stop()))
        proc.start()
        sim.run_until(10.0)
        assert fired == [1.0]

    def test_jitter_shifts_rounds(self):
        sim = Simulator()
        fired = []
        proc = PeriodicProcess(
            sim, 10.0, lambda: fired.append(sim.now), jitter=lambda: -2.0
        )
        proc.start()
        sim.run_until(40.0)
        # each round fires 2 s early relative to its nominal grid point
        # (10, 20, 30, ...); the offset perturbs rounds, it does not
        # accumulate into a permanent phase shift
        assert fired == [8.0, 18.0, 28.0, 38.0]

    def test_jitter_cannot_schedule_into_the_past(self):
        sim = Simulator()
        fired = []
        proc = PeriodicProcess(
            sim, 1.0, lambda: fired.append(sim.now), jitter=lambda: -5.0
        )
        proc.start()
        sim.run_until(3.5)
        # every target clamps to "now"; the process must neither raise nor
        # spin on a single instant forever
        assert len(fired) >= 3
        assert all(t >= 0.0 for t in fired)

    def test_no_drift_over_one_million_ticks(self):
        """Regression: rounds are placed at epoch + k*interval, computed
        multiplicatively.  The accumulating ``now + interval`` scheme
        drifts by milliseconds over 10^6 rounds of a non-representable
        interval like 0.1 s; the grid scheme is exact to the last ulp."""
        sim = Simulator()
        ticks = [0]
        interval = 0.1  # not representable in binary floating point
        rounds = 1_000_000

        proc = PeriodicProcess(sim, interval, lambda: ticks.__setitem__(0, ticks[0] + 1))
        proc.start()
        # half an interval of slop so the count is insensitive to the final
        # grid point's last-ulp placement
        horizon = interval * rounds + interval / 2
        sim.run_until(horizon)
        proc.stop()
        # exactly one tick per grid point in (0, horizon]
        assert ticks[0] == rounds
        # and the millionth round fired exactly at epoch + (10^6 - 1)*0.1
        # (observed via the simulator clock staying on-grid): re-check by
        # sampling a few grid points directly
        sim2 = Simulator()
        fired = []
        proc2 = PeriodicProcess(sim2, interval, lambda: fired.append(sim2.now))
        proc2.start()
        sim2.run_until(interval * 1000)
        assert fired[999] == interval + 999 * interval

    def test_restart_after_stop_reanchors_epoch(self):
        sim = Simulator()
        fired = []
        proc = PeriodicProcess(sim, 2.0, lambda: fired.append(sim.now))
        proc.start()
        sim.run_until(5.0)
        proc.stop()
        sim.run_until(7.0)
        proc.start(initial_delay=1.0)
        sim.run_until(12.0)
        assert fired == [2.0, 4.0, 8.0, 10.0, 12.0]

    def test_double_start_rejected(self):
        sim = Simulator()
        proc = PeriodicProcess(sim, 1.0, lambda: None)
        proc.start()
        with pytest.raises(SimulationError):
            proc.start()

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicProcess(Simulator(), 0.0, lambda: None)

    def test_stop_is_idempotent(self):
        proc = PeriodicProcess(Simulator(), 1.0, lambda: None)
        proc.stop()
        proc.stop()

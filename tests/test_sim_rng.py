"""Named RNG streams: stability, independence, fork."""

import numpy as np

from repro.sim.rng import RngRegistry


def test_same_name_same_stream_object():
    reg = RngRegistry(42)
    assert reg.stream("a") is reg.stream("a")


def test_streams_reproducible_across_registries():
    a = RngRegistry(42).stream("workload").random(10)
    b = RngRegistry(42).stream("workload").random(10)
    assert np.array_equal(a, b)


def test_stream_independent_of_creation_order():
    reg1 = RngRegistry(42)
    reg1.stream("x")
    seq1 = reg1.stream("y").random(5)
    reg2 = RngRegistry(42)
    seq2 = reg2.stream("y").random(5)  # "x" never created here
    assert np.array_equal(seq1, seq2)


def test_different_names_different_sequences():
    reg = RngRegistry(42)
    assert not np.array_equal(reg.stream("a").random(10), reg.stream("b").random(10))


def test_different_seeds_different_sequences():
    a = RngRegistry(1).stream("a").random(10)
    b = RngRegistry(2).stream("a").random(10)
    assert not np.array_equal(a, b)


def test_fork_is_deterministic_and_distinct():
    base = RngRegistry(42)
    f1 = base.fork(1).stream("a").random(5)
    f1_again = RngRegistry(42).fork(1).stream("a").random(5)
    f2 = base.fork(2).stream("a").random(5)
    assert np.array_equal(f1, f1_again)
    assert not np.array_equal(f1, f2)


def test_seed_property():
    assert RngRegistry(7).seed == 7

"""Metrics registry, null instruments, and cross-unit aggregation."""

import pytest

from repro.obs.metrics import (
    NULL_INSTRUMENT,
    SUBSYSTEMS,
    MetricsRegistry,
    aggregate_units,
    render_metrics_section,
)


def test_counter_gauge_histogram_roundtrip():
    registry = MetricsRegistry()
    events = registry.counter("sim", "events_processed")
    events.inc()
    events.inc(41)
    attached = registry.gauge("overlay", "final_attached")
    attached.set(37)
    attached.set(39)
    subtree = registry.histogram("overlay", "disruption_subtree_size")
    subtree.observe(1)
    subtree.observe(5)
    subtree.observe(2)

    snap = registry.snapshot()
    assert snap["counters"] == {"sim.events_processed": 42}
    assert snap["gauges"] == {"overlay.final_attached": 39}
    hist = snap["histograms"]["overlay.disruption_subtree_size"]
    assert hist == {"count": 3, "total": 8, "min": 1, "max": 5}


def test_snapshot_keys_are_sorted():
    registry = MetricsRegistry()
    registry.counter("sim", "zulu").inc()
    registry.counter("faults", "alpha").inc()
    registry.counter("overlay", "mike").inc()
    assert list(registry.snapshot()["counters"]) == [
        "faults.alpha",
        "overlay.mike",
        "sim.zulu",
    ]


def test_same_name_returns_same_instrument():
    registry = MetricsRegistry()
    a = registry.counter("sim", "events_processed")
    b = registry.counter("sim", "events_processed")
    a.inc()
    b.inc()
    assert registry.snapshot()["counters"]["sim.events_processed"] == 2


def test_unknown_subsystem_rejected():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="subsystem"):
        registry.counter("kitchen", "sinks")
    assert "experiments" in SUBSYSTEMS  # pool/runner metrics have a home


def test_null_instrument_is_inert():
    NULL_INSTRUMENT.inc()
    NULL_INSTRUMENT.inc(10)
    NULL_INSTRUMENT.set(99)
    NULL_INSTRUMENT.observe(3.5)
    assert NULL_INSTRUMENT.value == 0


def _unit(counters=None, histograms=None):
    # Shape of one entry in an ``artifacts["metrics"]`` list: the unit's
    # meta merged with its registry snapshot.
    return {
        "meta": {"kind": "churn"},
        "counters": counters or {},
        "gauges": {},
        "histograms": histograms or {},
    }


def test_aggregate_units_sums_counters_and_merges_histograms():
    units = [
        _unit(
            counters={"sim.events_processed": 10, "rost.switches": 2},
            histograms={
                "overlay.disruption_subtree_size": {
                    "count": 2,
                    "total": 4,
                    "min": 1,
                    "max": 3,
                }
            },
        ),
        _unit(
            counters={"sim.events_processed": 5},
            histograms={
                "overlay.disruption_subtree_size": {
                    "count": 1,
                    "total": 7,
                    "min": 7,
                    "max": 7,
                }
            },
        ),
    ]
    totals = aggregate_units(units)
    assert totals["units"] == 2
    assert totals["counters"] == {"sim.events_processed": 15, "rost.switches": 2}
    assert totals["histograms"]["overlay.disruption_subtree_size"] == {
        "count": 3,
        "total": 11,
        "min": 1,
        "max": 7,
    }


def test_aggregate_units_tolerates_bare_units():
    bare = {"meta": {"kind": "churn"}}
    totals = aggregate_units([bare, _unit(counters={"sim.events_processed": 1})])
    assert totals["units"] == 2
    assert totals["counters"] == {"sim.events_processed": 1}


def test_render_metrics_section_smoke():
    totals = aggregate_units([_unit(counters={"sim.events_processed": 7})])
    text = render_metrics_section(totals)
    assert "== metrics (1 runs) ==" in text
    assert "sim.events_processed" in text
    assert "7" in text

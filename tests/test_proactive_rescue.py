"""Proactive rescue plans (Yang & Fei-style precomputed recovery)."""

import dataclasses

import pytest

from repro.protocols import PROTOCOLS
from repro.recovery.schemes import cer_scheme
from repro.simulation.churn import ChurnSimulation
from repro.simulation.streaming import RecoverySimulation
from tests.conftest import small_sim_config


def with_rescue(cfg, enabled=True):
    return dataclasses.replace(
        cfg, protocol=dataclasses.replace(cfg.protocol, proactive_rescue=enabled)
    )


@pytest.fixture(scope="module")
def shared_infra():
    sim = ChurnSimulation(small_sim_config(), PROTOCOLS["min-depth"])
    return sim.topology, sim.oracle


def test_rescues_happen_and_are_counted(shared_infra):
    topo, oracle = shared_infra
    cfg = with_rescue(small_sim_config(population=100, seed=4))
    sim = ChurnSimulation(
        cfg, PROTOCOLS["min-depth"], topology=topo, oracle=oracle,
        check_invariants=True,
    )
    result = sim.run()
    assert result.extras["rescued_rejoins"] > 0


def test_disabled_by_default(shared_infra):
    topo, oracle = shared_infra
    sim = ChurnSimulation(
        small_sim_config(population=80, seed=4),
        PROTOCOLS["min-depth"],
        topology=topo,
        oracle=oracle,
    )
    result = sim.run()
    assert result.extras["rescued_rejoins"] == 0


def test_rescue_shrinks_starving(shared_infra):
    """Rescued orphans lose ~6 s of stream instead of 15 s, which the
    starving-time ratio must reflect."""
    topo, oracle = shared_infra

    def run(enabled):
        cfg = with_rescue(
            small_sim_config(population=120, seed=21, measure_lifetimes=1.0),
            enabled,
        )
        sim = RecoverySimulation(
            cfg,
            PROTOCOLS["min-depth"],
            [cer_scheme(2)],
            topology=topo,
            oracle=oracle,
        )
        return sim.run().ratio_pct("cer-k2-b5")

    without = run(False)
    with_plan = run(True)
    assert with_plan <= without
    assert without > 0


def test_rescue_respects_grandparent_capacity(shared_infra):
    """More children than grandparent slots: only the slot count rescues."""
    topo, oracle = shared_infra
    cfg = with_rescue(small_sim_config(population=100, seed=4))
    sim = ChurnSimulation(
        cfg, PROTOCOLS["min-depth"], topology=topo, oracle=oracle
    )
    result = sim.run()
    # sanity: rescues never exceed total failure reconnections
    assert result.extras["rescued_rejoins"] <= (
        result.metrics.failure_reconnections + result.sessions_total
    )

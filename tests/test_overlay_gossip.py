"""The Cyclon-style gossip peer-sampling service."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.overlay.gossip import GossipMembership
from repro.protocols import PROTOCOLS
from repro.sim.engine import Simulator
from repro.simulation.churn import ChurnSimulation
from tests.conftest import make_node, small_sim_config


@pytest.fixture()
def service():
    sim = Simulator()
    return (
        GossipMembership(
            np.random.default_rng(4),
            sim,
            view_size=8,
            shuffle_length=4,
            shuffle_interval_s=10.0,
        ),
        sim,
    )


def register_members(service, sim, count, attached=True):
    nodes = []
    for i in range(count):
        node = make_node(i + 1)
        node.attached = attached
        service.register(node)
        nodes.append(node)
    return nodes


def test_validation():
    sim = Simulator()
    rng = np.random.default_rng(0)
    with pytest.raises(ProtocolError):
        GossipMembership(rng, sim, view_size=1)
    with pytest.raises(ProtocolError):
        GossipMembership(rng, sim, view_size=8, shuffle_length=9)


def test_bootstrap_gives_new_member_a_view(service):
    gossip, sim = service
    nodes = register_members(gossip, sim, 10)
    late = make_node(99)
    late.attached = True
    gossip.register(late)
    assert len(gossip.view_of(late)) >= 1


def test_views_stay_bounded(service):
    gossip, sim = service
    nodes = register_members(gossip, sim, 30)
    sim.run_until(200.0)
    for node in nodes:
        view = gossip.view_of(node)
        assert len(view) <= gossip.view_size
        assert node.member_id not in view
        assert len(set(view)) == len(view)


def test_shuffling_spreads_knowledge(service):
    """After enough rounds, members know far more peers than their
    bootstrap contact chain provided."""
    gossip, sim = service
    nodes = register_members(gossip, sim, 30)
    sim.run_until(500.0)
    assert gossip.shuffles > 0
    sizes = [len(gossip.view_of(n)) for n in nodes]
    assert np.mean(sizes) >= gossip.view_size * 0.75


def test_departed_members_age_out(service):
    gossip, sim = service
    nodes = register_members(gossip, sim, 20)
    sim.run_until(100.0)
    victim = nodes[0]
    gossip.unregister(victim)
    sim.run_until(600.0)
    holders = sum(
        1 for n in nodes[1:] if victim.member_id in gossip.view_of(n)
    )
    # dead descriptors get discarded as they cycle through shuffles
    assert holders <= len(nodes) // 3


def test_sample_for_draws_from_own_view(service):
    gossip, sim = service
    nodes = register_members(gossip, sim, 25)
    sim.run_until(300.0)
    node = nodes[5]
    view_ids = set(gossip.view_of(node))
    picked = gossip.sample_for(node, 5)
    assert all(p.member_id in view_ids for p in picked)
    assert all(p.member_id != node.member_id for p in picked)


def test_sample_for_respects_attached_filter(service):
    gossip, sim = service
    nodes = register_members(gossip, sim, 10)
    sim.run_until(200.0)
    for other in nodes[1:]:
        other.attached = False
    assert gossip.sample_for(nodes[0], 5, attached_only=True) == []


def test_unregister_stops_shuffling(service):
    gossip, sim = service
    nodes = register_members(gossip, sim, 5)
    for node in nodes:
        gossip.unregister(node)
    before = gossip.shuffles
    sim.run_until(500.0)
    assert gossip.shuffles == before


def test_churn_simulation_runs_on_gossip_membership():
    cfg = small_sim_config(population=40, seed=6, measure_lifetimes=0.5)
    sim = ChurnSimulation(
        cfg,
        PROTOCOLS["min-depth"],
        membership_mode="gossip",
        check_invariants=True,
    )
    result = sim.run()
    assert result.metrics.mean_population > 0
    assert sim.membership.shuffles > 0


def test_unknown_membership_mode_rejected():
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        ChurnSimulation(
            small_sim_config(), PROTOCOLS["min-depth"], membership_mode="bogus"
        )

"""End-to-end determinism of the traced CLI path.

The observability contract: a traced run's merged JSONL and its ``--json``
report are byte-identical across ``--jobs`` values and across repeat
invocations.  Only the profile channel (stdout-only) may differ.
"""

import json
import os

import pytest

from repro.experiments import common
from repro.experiments.runner import main
from repro.obs.capture import (
    ENV_METRICS,
    ENV_PROFILE,
    ENV_TRACE,
    ENV_TRACE_EVENTS,
)
from repro.obs.schema import validate_trace_lines


@pytest.fixture(autouse=True)
def fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


def _traced_run(tmp_path, tag, jobs, extra=()):
    trace = tmp_path / f"trace-{tag}.jsonl"
    dump = tmp_path / f"data-{tag}.json"
    common.clear_caches()
    code = main([
        "run", "fig05",
        "--scale", "0.02",
        "--seed", "3",
        "--replicas", "2",
        "--jobs", str(jobs),
        "--trace", str(trace),
        "--metrics",
        "--json", str(dump),
        *extra,
    ])
    assert code == 0
    return trace.read_text(), dump.read_text()


def test_trace_byte_identical_across_jobs(tmp_path):
    serial = _traced_run(tmp_path, "j1", jobs=1)
    parallel = _traced_run(tmp_path, "j2", jobs=2)
    assert serial[0] == parallel[0], "merged trace differs between --jobs 1 and 2"
    assert serial[1] == parallel[1], "--json report differs between --jobs 1 and 2"

    lines = serial[0].splitlines()
    assert validate_trace_lines(lines) == len(lines) > 0


def test_trace_byte_identical_across_repeat_runs(tmp_path):
    first = _traced_run(tmp_path, "a", jobs=2)
    second = _traced_run(tmp_path, "b", jobs=2)
    assert first == second


def test_profile_channel_does_not_touch_trace_or_json(tmp_path):
    plain = _traced_run(tmp_path, "plain", jobs=2)
    profiled = _traced_run(tmp_path, "prof", jobs=2, extra=["--profile"])
    assert plain == profiled


def test_metrics_land_in_json_report(tmp_path):
    _, dump = _traced_run(tmp_path, "json", jobs=1)
    data = json.loads(dump)
    totals = data["_obs_metrics"]
    assert totals["units"] > 0
    assert totals["counters"]["sim.events_processed"] > 0


def test_obs_env_restored_after_main(tmp_path):
    for name in (ENV_TRACE, ENV_TRACE_EVENTS, ENV_METRICS, ENV_PROFILE):
        assert name not in os.environ
    _traced_run(tmp_path, "env", jobs=1)
    for name in (ENV_TRACE, ENV_TRACE_EVENTS, ENV_METRICS, ENV_PROFILE):
        assert name not in os.environ, f"{name} leaked out of main()"


def test_untraced_run_writes_no_trace_file(tmp_path):
    common.clear_caches()
    code = main(["run", "fig05", "--scale", "0.02", "--seed", "3", "--jobs", "1"])
    assert code == 0
    assert list(tmp_path.glob("*.jsonl")) == []

"""Shared protocol machinery: candidate sampling, min-depth selection,
service delay and stretch."""

import math

import pytest

from repro.config import ProtocolConfig
from tests.protocol_harness import Harness


@pytest.fixture()
def harness(tiny_topology, tiny_oracle):
    return Harness(tiny_topology, tiny_oracle)


class _Concrete:
    """Minimal TreeProtocol subclass for exercising base helpers."""

    def __new__(cls, ctx):
        from repro.protocols.base import TreeProtocol

        class P(TreeProtocol):
            name = "test"

            def place(self, node, rejoin):
                return False

        return P(ctx)


def test_select_min_depth_prefers_smaller_layer(harness):
    proto = _Concrete(harness.ctx)
    a = harness.new_member(bandwidth=3.0)
    b = harness.new_member(bandwidth=3.0)
    joiner = harness.new_member()
    harness.tree.attach(a, harness.tree.root)
    harness.tree.attach(b, a)
    assert proto.select_min_depth(joiner, [a, b]) is a


def test_select_min_depth_skips_full_parents(harness):
    proto = _Concrete(harness.ctx)
    full = harness.new_member(bandwidth=1.0, cap=1)
    leafy = harness.new_member(bandwidth=2.0)
    child = harness.new_member(bandwidth=0.5, cap=0)
    joiner = harness.new_member()
    harness.tree.attach(full, harness.tree.root)
    harness.tree.attach(leafy, full)  # full is now at capacity
    assert proto.select_min_depth(joiner, [full, leafy]) is leafy


def test_select_min_depth_tie_breaks_by_delay(harness):
    proto = _Concrete(harness.ctx)
    near = harness.new_member(bandwidth=2.0, underlay_index=5)
    far = harness.new_member(bandwidth=2.0, underlay_index=40)
    harness.tree.attach(near, harness.tree.root)
    harness.tree.attach(far, harness.tree.root)
    joiner = harness.new_member(underlay_index=5)  # same stub pool as `near`
    choice = proto.select_min_depth(joiner, [far, near])
    d_near = harness.ctx.delay_ms(joiner, near)
    d_far = harness.ctx.delay_ms(joiner, far)
    assert choice is (near if d_near <= d_far else far)


def test_select_min_depth_none_when_no_capacity(harness):
    proto = _Concrete(harness.ctx)
    joiner = harness.new_member()
    assert proto.select_min_depth(joiner, []) is None


def test_sample_candidates_excludes_self(tiny_topology, tiny_oracle):
    harness = Harness(tiny_topology, tiny_oracle, root_cap=10)
    proto = _Concrete(harness.ctx)
    member = harness.new_member()
    others = [harness.new_member() for _ in range(5)]
    for other in others:
        harness.tree.attach(other, harness.tree.root)
    candidates = proto.sample_candidates(member)
    assert member not in candidates


def test_sample_candidates_mature_view_includes_top(tiny_topology, tiny_oracle):
    harness = Harness(
        tiny_topology,
        tiny_oracle,
        protocol_config=ProtocolConfig(join_candidates=2, well_known_top=3),
        root_cap=10,
    )
    proto = _Concrete(harness.ctx)
    members = [harness.new_member(bandwidth=3.0) for _ in range(8)]
    for m in members:
        harness.tree.attach(m, harness.tree.root)
    joiner = harness.new_member()
    mature = proto.sample_candidates(joiner, mature_view=True)
    fresh = proto.sample_candidates(joiner, mature_view=False)
    assert harness.tree.root in mature  # the top is always known
    assert len(fresh) <= 2


def test_service_delay_sums_hops(harness):
    a = harness.new_member(bandwidth=3.0, underlay_index=3)
    b = harness.new_member(bandwidth=3.0, underlay_index=9)
    harness.tree.attach(a, harness.tree.root)
    harness.tree.attach(b, a)
    expected = harness.ctx.delay_ms(b, a) + harness.ctx.delay_ms(
        a, harness.tree.root
    )
    assert harness.ctx.service_delay_ms(b) == pytest.approx(expected)
    assert harness.ctx.service_delay_ms(harness.tree.root) == 0.0


def test_service_delay_infinite_when_detached(harness):
    lone = harness.new_member()
    assert math.isinf(harness.ctx.service_delay_ms(lone))


def test_stretch_at_least_one_on_tree_paths(harness):
    a = harness.new_member(bandwidth=3.0, underlay_index=3)
    b = harness.new_member(bandwidth=3.0, underlay_index=20)
    harness.tree.attach(a, harness.tree.root)
    harness.tree.attach(b, a)
    assert harness.ctx.stretch(a) == pytest.approx(1.0)  # direct child
    assert harness.ctx.stretch(b) >= 1.0 - 1e-9

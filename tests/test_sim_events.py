"""Event queue ordering, cancellation and determinism."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def test_pops_in_time_order():
    q = EventQueue()
    fired = []
    for t in [5.0, 1.0, 3.0]:
        q.schedule(t, lambda t=t: fired.append(t))
    while q:
        q.pop().action()
    assert fired == [1.0, 3.0, 5.0]


def test_same_time_fifo_by_schedule_order():
    q = EventQueue()
    order = []
    for i in range(10):
        q.schedule(1.0, lambda i=i: order.append(i))
    while q:
        q.pop().action()
    assert order == list(range(10))


def test_priority_breaks_time_ties():
    q = EventQueue()
    order = []
    q.schedule(1.0, lambda: order.append("late"), priority=5)
    q.schedule(1.0, lambda: order.append("early"), priority=-5)
    while q:
        q.pop().action()
    assert order == ["early", "late"]


def test_cancel_skips_event():
    q = EventQueue()
    fired = []
    keep = q.schedule(1.0, lambda: fired.append("keep"))
    drop = q.schedule(0.5, lambda: fired.append("drop"))
    drop.cancel()
    while q:
        q.pop().action()
    assert fired == ["keep"]
    assert not keep.cancelled


def test_cancel_is_idempotent_and_len_accurate():
    q = EventQueue()
    e1 = q.schedule(1.0, lambda: None)
    q.schedule(2.0, lambda: None)
    assert len(q) == 2
    e1.cancel()
    e1.cancel()
    assert len(q) == 1
    assert q.pop().time == 2.0
    assert len(q) == 0
    assert not q


def test_peek_time_skips_cancelled_head():
    q = EventQueue()
    head = q.schedule(1.0, lambda: None)
    q.schedule(2.0, lambda: None)
    head.cancel()
    assert q.peek_time() == 2.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().pop()


def test_schedule_nan_rejected():
    with pytest.raises(SimulationError):
        EventQueue().schedule(float("nan"), lambda: None)


def test_clear_discards_everything():
    q = EventQueue()
    events = [q.schedule(float(i), lambda: None) for i in range(5)]
    q.clear()
    assert len(q) == 0
    assert q.peek_time() is None
    assert all(e.cancelled for e in events)


def test_labels_are_kept():
    q = EventQueue()
    e = q.schedule(1.0, lambda: None, label="rejoin")
    assert e.label == "rejoin"


# -- _live bookkeeping audit ---------------------------------------------------
#
# ``len(q)``/``bool(q)`` are backed by a counter maintained across lazy
# cancellation; these regressions lock the counter against every sequence
# that has historically corrupted such designs.


def test_double_cancel_does_not_corrupt_len():
    q = EventQueue()
    e1 = q.schedule(1.0, lambda: None)
    e2 = q.schedule(2.0, lambda: None)
    e3 = q.schedule(3.0, lambda: None)
    e2.cancel()
    e2.cancel()
    e2.cancel()
    assert len(q) == 2
    e1.cancel()
    e1.cancel()
    assert len(q) == 1
    assert q.pop() is e3
    assert len(q) == 0 and not q


def test_cancel_then_pop_sequence():
    q = EventQueue()
    events = [q.schedule(float(i), lambda: None) for i in range(6)]
    events[0].cancel()  # cancelled head
    events[3].cancel()  # cancelled middle
    popped = []
    while q:
        popped.append(q.pop())
    assert popped == [events[1], events[2], events[4], events[5]]
    assert len(q) == 0


def test_cancel_after_pop_is_harmless():
    q = EventQueue()
    e1 = q.schedule(1.0, lambda: None)
    q.schedule(2.0, lambda: None)
    popped = q.pop()
    assert popped is e1
    assert len(q) == 1
    # a popped event is no longer the queue's concern; cancelling its
    # handle must not decrement the live count of the remaining events
    popped.cancel()
    assert len(q) == 1
    assert bool(q)
    q.pop()
    assert len(q) == 0


def test_len_consistency_under_mixed_schedule_cancel():
    q = EventQueue()
    live = []
    expected = 0
    for round_no in range(10):
        batch = [q.schedule(float(round_no), lambda: None) for _ in range(5)]
        live.extend(batch)
        expected += 5
        # cancel every other event of this batch, one of them twice
        for event in batch[::2]:
            event.cancel()
            expected -= 1
        batch[0].cancel()
        assert len(q) == expected
        assert bool(q) == (expected > 0)
    drained = 0
    while q:
        q.pop()
        drained += 1
    assert drained == expected
    assert len(q) == 0 and not q


def test_clear_then_cancel_handles_is_safe():
    q = EventQueue()
    events = [q.schedule(float(i), lambda: None) for i in range(4)]
    q.clear()
    for event in events:
        event.cancel()  # must not drive the counter negative
    assert len(q) == 0 and not q
    e = q.schedule(1.0, lambda: None)
    assert len(q) == 1
    assert q.pop() is e


def test_pop_all_cancelled_raises_with_zero_len():
    from repro.errors import SimulationError as SE

    q = EventQueue()
    for event in [q.schedule(float(i), lambda: None) for i in range(3)]:
        event.cancel()
    assert len(q) == 0 and not q
    with pytest.raises(SE):
        q.pop()

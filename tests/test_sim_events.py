"""Event queue ordering, cancellation and determinism."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def test_pops_in_time_order():
    q = EventQueue()
    fired = []
    for t in [5.0, 1.0, 3.0]:
        q.schedule(t, lambda t=t: fired.append(t))
    while q:
        q.pop().action()
    assert fired == [1.0, 3.0, 5.0]


def test_same_time_fifo_by_schedule_order():
    q = EventQueue()
    order = []
    for i in range(10):
        q.schedule(1.0, lambda i=i: order.append(i))
    while q:
        q.pop().action()
    assert order == list(range(10))


def test_priority_breaks_time_ties():
    q = EventQueue()
    order = []
    q.schedule(1.0, lambda: order.append("late"), priority=5)
    q.schedule(1.0, lambda: order.append("early"), priority=-5)
    while q:
        q.pop().action()
    assert order == ["early", "late"]


def test_cancel_skips_event():
    q = EventQueue()
    fired = []
    keep = q.schedule(1.0, lambda: fired.append("keep"))
    drop = q.schedule(0.5, lambda: fired.append("drop"))
    drop.cancel()
    while q:
        q.pop().action()
    assert fired == ["keep"]
    assert not keep.cancelled


def test_cancel_is_idempotent_and_len_accurate():
    q = EventQueue()
    e1 = q.schedule(1.0, lambda: None)
    q.schedule(2.0, lambda: None)
    assert len(q) == 2
    e1.cancel()
    e1.cancel()
    assert len(q) == 1
    assert q.pop().time == 2.0
    assert len(q) == 0
    assert not q


def test_peek_time_skips_cancelled_head():
    q = EventQueue()
    head = q.schedule(1.0, lambda: None)
    q.schedule(2.0, lambda: None)
    head.cancel()
    assert q.peek_time() == 2.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().pop()


def test_schedule_nan_rejected():
    with pytest.raises(SimulationError):
        EventQueue().schedule(float("nan"), lambda: None)


def test_clear_discards_everything():
    q = EventQueue()
    events = [q.schedule(float(i), lambda: None) for i in range(5)]
    q.clear()
    assert len(q) == 0
    assert q.peek_time() is None
    assert all(e.cancelled for e in events)


def test_labels_are_kept():
    q = EventQueue()
    e = q.schedule(1.0, lambda: None, label="rejoin")
    assert e.label == "rejoin"

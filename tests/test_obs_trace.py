"""Golden-trace determinism and TraceWriter behaviour.

Three checked-in goldens pin the trace byte format:

* ``tests/golden/trace_engine.jsonl`` — a scripted bare-kernel run
  (no RNG involved, fully platform-independent) covering the
  high-volume ``event`` records plus ``fault`` and ``run_end``.
* ``tests/golden/trace_churn_small.jsonl`` — a tiny ROST churn run
  covering the structural records (``run_start``/``switch``/
  ``disruption``/``episode_open``/``episode_close``).
* ``tests/golden/trace_multitree_small.jsonl`` — a tiny K=2 striped
  run with a correlated crash, covering ``stripe_outage_open``/
  ``stripe_outage_close`` and the per-stripe ``run_start`` metadata.

Regenerate after an intentional format change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs_trace.py
"""

import dataclasses
import json
import os
from functools import lru_cache
from pathlib import Path

import pytest

from repro.obs.attach import ObsAttachment
from repro.obs.schema import RECORD_TYPES, validate_trace_lines
from repro.obs.trace import TraceWriter
from repro.protocols import PROTOCOLS
from repro.sim.engine import Simulator
from repro.simulation.churn import ChurnSimulation

from .conftest import small_sim_config

GOLDEN_DIR = Path(__file__).parent / "golden"
ENGINE_GOLDEN = GOLDEN_DIR / "trace_engine.jsonl"
CHURN_GOLDEN = GOLDEN_DIR / "trace_churn_small.jsonl"
MULTITREE_GOLDEN = GOLDEN_DIR / "trace_multitree_small.jsonl"
ALL_GOLDENS = (ENGINE_GOLDEN, CHURN_GOLDEN, MULTITREE_GOLDEN)


def _engine_trace_unit():
    """A scripted kernel run: deterministic without any RNG."""
    sim = Simulator()
    attachment = ObsAttachment(
        meta={"kind": "engine"},
        trace=True,
        trace_events=True,
        metrics=True,
        profile=False,
    ).attach_engine(sim)

    def noop():
        pass

    sim.schedule_at(1.0, noop, label="tick")
    sim.schedule_at(2.0, noop, label="fault:test-outage", priority=-2)
    sim.schedule_at(2.0, noop, priority=1)
    cancelled = sim.schedule_at(3.0, noop, label="never-fires")
    cancelled.cancel()
    sim.schedule_at(4.0, noop, label="fault:test-crash")
    sim.run_until(5.0)
    return attachment.finalize()


def _golden_churn_config():
    # The paper's 100-slot root would absorb every member at this size
    # (flat tree, nothing to switch or recover); a 3-slot root forces
    # depth so the golden exercises switches and recovery episodes.
    cfg = small_sim_config(
        population=40,
        seed=9,
        warmup_lifetimes=0.4,
        measure_lifetimes=1.0,
        switch_interval_s=30.0,
    )
    return dataclasses.replace(
        cfg, workload=dataclasses.replace(cfg.workload, root_bandwidth=3.0)
    )


@lru_cache(maxsize=None)
def _multitree_trace_lines():
    """A tiny K=2 striped run under a correlated crash, traced per stripe.

    The driver attaches its own per-stripe ObsAttachments from the
    ambient obs environment, so this harness flips the trace flag and
    collects the emitted units through a job capture — the same path a
    traced campaign uses.
    """
    from repro.faults import FaultSchedule, NodeCrash
    from repro.multitree import MultiTreeSimulation
    from repro.obs.capture import ENV_TRACE, job_capture

    cfg = _golden_churn_config()
    schedule = FaultSchedule(
        seed=3, faults=(NodeCrash(count=4, at_frac=0.5),)
    )
    saved = os.environ.get(ENV_TRACE)
    os.environ[ENV_TRACE] = "1"
    try:
        with job_capture() as capture:
            MultiTreeSimulation(
                cfg,
                num_trees=2,
                stripe_protocols=["rost", "rost"],
                faults=schedule,
            ).run()
    finally:
        if saved is None:
            del os.environ[ENV_TRACE]
        else:
            os.environ[ENV_TRACE] = saved
    return [line for unit in capture.units for line in unit.trace_lines]


@lru_cache(maxsize=None)
def _churn_trace_unit(profile: bool):
    sim = ChurnSimulation(_golden_churn_config(), PROTOCOLS["rost"])
    attachment = ObsAttachment(
        meta={"kind": "churn", "protocol": "rost"},
        trace=True,
        trace_events=False,
        metrics=True,
        profile=profile,
    ).attach(sim)
    result = sim.run()
    return attachment.finalize(result)


def _check_golden(golden_path: Path, lines):
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        golden_path.parent.mkdir(exist_ok=True)
        golden_path.write_text("".join(line + "\n" for line in lines))
    expected = golden_path.read_text().splitlines()
    assert lines == expected, (
        f"trace diverged from {golden_path.name}; if the format change is "
        "intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )


def test_engine_trace_matches_golden():
    _check_golden(ENGINE_GOLDEN, _engine_trace_unit().trace_lines)


def test_churn_trace_matches_golden():
    _check_golden(CHURN_GOLDEN, _churn_trace_unit(False).trace_lines)


def test_multitree_trace_matches_golden():
    lines = _multitree_trace_lines()
    _check_golden(MULTITREE_GOLDEN, lines)
    types = {json.loads(line)["type"] for line in lines}
    assert {"stripe_outage_open", "stripe_outage_close"} <= types


def test_engine_trace_repeat_generation_is_byte_identical():
    assert _engine_trace_unit().trace_lines == _engine_trace_unit().trace_lines


def test_goldens_are_schema_valid():
    for path in ALL_GOLDENS:
        lines = path.read_text().splitlines()
        assert validate_trace_lines(lines) == len(lines) > 0


def test_goldens_cover_every_record_type():
    types = set()
    for path in ALL_GOLDENS:
        for line in path.read_text().splitlines():
            types.add(json.loads(line)["type"])
    assert types == set(RECORD_TYPES)


def test_trace_is_independent_of_profile_channel():
    """Wall-time data must never leak into trace records: enabling the
    profiler cannot change a single trace byte."""
    plain = _churn_trace_unit(False)
    profiled = _churn_trace_unit(True)
    assert plain.trace_lines == profiled.trace_lines
    assert plain.metrics == profiled.metrics
    assert plain.profile == {}
    assert profiled.profile["by_key"]  # wall times live here, and only here
    for line in profiled.trace_lines:
        assert "wall" not in line


def test_engine_trace_skips_cancelled_events_and_counts_faults():
    unit = _engine_trace_unit()
    labels = [
        json.loads(line)["label"]
        for line in unit.trace_lines
        if json.loads(line)["type"] == "event"
    ]
    assert "never-fires" not in labels
    assert unit.metrics["counters"]["faults.activations"] == 2
    assert unit.metrics["counters"]["sim.events_processed"] == 4


# -- TraceWriter file mode -------------------------------------------------------------


def test_file_writer_publishes_atomically(tmp_path):
    path = tmp_path / "run.trace.jsonl"
    writer = TraceWriter(str(path), buffer_records=2)
    writer.emit({"type": "fault", "t": 1.0, "label": "fault:a"})
    writer.emit({"type": "fault", "t": 2.0, "label": "fault:b"})
    writer.emit({"type": "fault", "t": 3.0, "label": "fault:c"})
    # Nothing at the final path until close(), even though the buffer
    # (2 records) has already spilled to the temp file.
    assert not path.exists()
    assert list(tmp_path.glob("*.tmp-*"))
    writer.close()
    assert path.exists()
    assert not list(tmp_path.glob("*.tmp-*"))
    lines = path.read_text().splitlines()
    assert validate_trace_lines(lines) == 3
    writer.close()  # idempotent


def test_file_writer_abort_leaves_nothing(tmp_path):
    path = tmp_path / "run.trace.jsonl"
    writer = TraceWriter(str(path))
    writer.emit({"type": "fault", "t": 1.0, "label": "fault:a"})
    writer.abort()
    assert not path.exists()
    assert not list(tmp_path.glob("*.tmp-*"))


def test_file_writer_context_manager_aborts_on_error(tmp_path):
    path = tmp_path / "run.trace.jsonl"
    with pytest.raises(RuntimeError):
        with TraceWriter(str(path)) as writer:
            writer.emit({"type": "fault", "t": 1.0, "label": "fault:a"})
            raise RuntimeError("boom")
    assert not path.exists()


def test_memory_writer_guards():
    writer = TraceWriter()
    writer.emit({"type": "fault", "t": 1.0, "label": "fault:a"})
    assert writer.records_emitted == 1
    writer.close()
    with pytest.raises(ValueError):
        writer.emit({"type": "fault", "t": 2.0, "label": "fault:b"})
    with pytest.raises(ValueError):
        TraceWriter(buffer_records=0)
    with pytest.raises(ValueError):
        TraceWriter("/tmp/x.jsonl").lines  # noqa: B018 - file mode has no lines

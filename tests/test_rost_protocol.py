"""ROST switching, promotion, succession and guards."""

import pytest

from repro.config import ProtocolConfig
from repro.protocols.rost import RostProtocol
from tests.protocol_harness import Harness


@pytest.fixture()
def harness(tiny_topology, tiny_oracle):
    return Harness(
        tiny_topology,
        tiny_oracle,
        protocol_config=ProtocolConfig(switch_interval_s=100.0),
        root_cap=2,
    )


def build_chain(harness, proto):
    """root -> a (bw 2, old) -> b (bw 3, younger): b will out-BTP a."""
    a = harness.new_member(bandwidth=2.0, join_time=0.0)
    b = harness.new_member(bandwidth=3.0, join_time=0.0)
    assert proto.place(a, rejoin=False)
    # force b under a regardless of sampling
    harness.tree.attach(b, a)
    if b.member_id not in proto._switch_processes:
        proto._start_switching(b)
        if proto.referees is not None:
            proto.referees.register(b, harness.sim.now)
    return a, b


class TestSwitching:
    def test_higher_btp_child_swaps_with_parent(self, harness):
        proto = RostProtocol(harness.ctx, promote_into_spare=False)
        a, b = build_chain(harness, proto)
        # b's BTP (3t) exceeds a's (2t) immediately for t > 0 and bw guard holds
        harness.sim.run_until(500.0)
        assert b.parent is harness.tree.root
        assert a.parent is b
        assert proto.switches >= 1
        harness.tree.check_invariants()

    def test_bandwidth_guard_blocks_small_bw(self, harness):
        proto = RostProtocol(harness.ctx, promote_into_spare=False)
        # a young with bw 5; b older with bw 2: b's BTP wins but guard blocks
        a = harness.new_member(bandwidth=5.0, join_time=0.0)
        assert proto.place(a, rejoin=False)
        harness.sim.run_until(200.0)
        b = harness.new_member(bandwidth=2.0, join_time=-1000.0)
        harness.tree.attach(b, a)
        proto._start_switching(b)
        if proto.referees is not None:
            proto.referees.register(b, harness.sim.now)
        harness.sim.run_until(1000.0)
        assert b.parent is a  # still below: guard held

    def test_guard_ablation_allows_swap(self, harness):
        proto = RostProtocol(
            harness.ctx, bandwidth_guard=False, promote_into_spare=False
        )
        a = harness.new_member(bandwidth=5.0, cap=5, join_time=0.0)
        assert proto.place(a, rejoin=False)
        harness.sim.run_until(200.0)
        b = harness.new_member(bandwidth=2.0, cap=2, join_time=-10000.0)
        harness.tree.attach(b, a)
        proto._start_switching(b)
        if proto.referees is not None:
            proto.referees.register(b, harness.sim.now)
        harness.sim.run_until(1000.0)
        assert b.parent is harness.tree.root
        assert a.parent is b
        harness.tree.check_invariants()

    def test_overhead_counted_per_affected_member(self, harness):
        counts = []
        proto = RostProtocol(harness.ctx, promote_into_spare=False)
        proto.overhead_callback = counts.append
        a, b = build_chain(harness, proto)
        harness.sim.run_until(500.0)
        # a swap touches at least the two principals
        assert sum(counts) >= 2
        assert a.optimization_reconnections >= 1
        assert b.optimization_reconnections >= 1

    def test_lock_blocks_and_retries(self, harness):
        proto = RostProtocol(harness.ctx, promote_into_spare=False)
        a, b = build_chain(harness, proto)
        # lock the parent across the first few switch rounds
        a.lock(until=250.0)
        harness.sim.run_until(220.0)
        assert b.parent is a
        assert proto.lock_failures >= 1
        harness.sim.run_until(800.0)  # retry succeeds after the lock expires
        assert b.parent is harness.tree.root

    def test_never_swaps_with_root(self, harness):
        proto = RostProtocol(harness.ctx)
        a = harness.new_member(bandwidth=5.0, join_time=0.0)
        assert proto.place(a, rejoin=False)
        harness.sim.run_until(1000.0)
        assert a.parent is harness.tree.root
        assert proto.switches == 0


class TestPromotion:
    def test_promotes_into_grandparent_spare(self, harness):
        proto = RostProtocol(harness.ctx)
        a = harness.new_member(bandwidth=2.0, join_time=0.0)
        assert proto.place(a, rejoin=False)
        # root has a second spare slot; b under a with a large BTP
        b = harness.new_member(bandwidth=3.0, join_time=-500.0)
        harness.tree.attach(b, a)
        proto._start_switching(b)
        if proto.referees is not None:
            proto.referees.register(b, harness.sim.now)
        harness.sim.run_until(300.0)
        assert b.parent is harness.tree.root
        assert a.parent is harness.tree.root  # nobody was demoted
        assert proto.promotions >= 1
        harness.tree.check_invariants()

    def test_free_riders_never_promote(self, harness):
        proto = RostProtocol(harness.ctx)
        a = harness.new_member(bandwidth=2.0, join_time=0.0)
        assert proto.place(a, rejoin=False)
        rider = harness.new_member(bandwidth=0.6, cap=0, join_time=-100000.0)
        harness.tree.attach(rider, a)
        proto._start_switching(rider)
        if proto.referees is not None:
            proto.referees.register(rider, harness.sim.now)
        harness.sim.run_until(1000.0)
        assert rider.parent is a
        assert proto.promotions == 0


class TestSuccession:
    def test_orphan_takes_grandparent_slot(self, harness):
        proto = RostProtocol(harness.ctx)
        a = harness.new_member(bandwidth=2.0, join_time=0.0)
        assert proto.place(a, rejoin=False)
        b = harness.new_member(bandwidth=2.0, join_time=0.0)
        harness.tree.attach(b, a)
        orphans = harness.depart(a)
        assert orphans == [b]
        b.rejoin_hint = harness.tree.root
        assert proto.place(b, rejoin=True)
        assert b.parent is harness.tree.root

    def test_free_rider_orphan_falls_back(self, harness):
        proto = RostProtocol(harness.ctx)
        a = harness.new_member(bandwidth=2.0, join_time=0.0)
        other = harness.new_member(bandwidth=2.0, join_time=0.0)
        assert proto.place(a, rejoin=False)
        assert proto.place(other, rejoin=False)
        rider = harness.new_member(bandwidth=0.5, cap=0)
        harness.tree.attach(rider, a)
        harness.depart(a)
        rider.rejoin_hint = harness.tree.root
        assert proto.place(rider, rejoin=True)
        # succession refused (cannot forward); attached via normal join
        assert rider.parent is not harness.tree.root or rider.attached

    def test_stale_hint_ignored(self, harness):
        proto = RostProtocol(harness.ctx)
        a = harness.new_member(bandwidth=2.0)
        b = harness.new_member(bandwidth=2.0)
        c = harness.new_member(bandwidth=2.0)
        assert proto.place(a, rejoin=False)
        harness.tree.attach(b, a)
        harness.tree.attach(c, b)
        orphans = harness.depart(b)
        assert orphans == [c]
        harness.depart(a)  # the hinted grandparent departs too
        c.rejoin_hint = a
        assert proto.place(c, rejoin=True)
        assert c.attached
        assert c.parent is not a


class TestLifecycle:
    def test_departure_stops_switch_process(self, harness):
        proto = RostProtocol(harness.ctx)
        a = harness.new_member(bandwidth=2.0)
        assert proto.place(a, rejoin=False)
        assert a.member_id in proto._switch_processes
        proto.on_departure(a)
        assert a.member_id not in proto._switch_processes

    def test_rejoin_does_not_duplicate_processes(self, harness):
        proto = RostProtocol(harness.ctx)
        a = harness.new_member(bandwidth=2.0)
        assert proto.place(a, rejoin=False)
        harness.tree.detach(a)
        assert proto.place(a, rejoin=True)
        assert len([p for p in proto._switch_processes if p == a.member_id]) == 1

"""Referee mechanism: truth-keeping, replacement, cheat resistance."""

import pytest

from repro.errors import ProtocolError
from repro.protocols.rost import RostProtocol
from repro.protocols.rost.referees import RefereeService
from tests.protocol_harness import Harness


@pytest.fixture()
def harness(tiny_topology, tiny_oracle):
    return Harness(tiny_topology, tiny_oracle, root_cap=10)


@pytest.fixture()
def service(harness):
    return RefereeService(harness.ctx)


def attach_members(harness, count, bandwidth=2.0):
    members = []
    for _ in range(count):
        node = harness.new_member(bandwidth=bandwidth)
        harness.tree.attach(node, harness.tree.root)
        members.append(node)
    return members


def test_register_records_truth(harness, service):
    attach_members(harness, 5)
    node = harness.new_member(bandwidth=3.0, join_time=10.0)
    node.claimed_bandwidth = 99.0
    node.claimed_join_time = -1e6
    service.register(node, now=10.0)
    bandwidth, join_time = service.verified(node)
    # the measurer set observes the true rate up to measurement noise;
    # the claim (99.0) never enters the estimate
    assert bandwidth == pytest.approx(3.0, rel=0.25)
    assert join_time == 10.0


def test_verified_btp_uses_truth(harness, service):
    attach_members(harness, 5)
    node = harness.new_member(bandwidth=2.0, join_time=0.0)
    node.claimed_bandwidth = 100.0
    service.register(node, now=0.0)
    assert service.verified_btp(node, now=50.0) == pytest.approx(100.0, rel=0.25)


def test_measurement_noise_zero_is_exact(harness):
    import dataclasses

    from repro.protocols.base import ProtocolContext

    ctx = dataclasses.replace(
        harness.ctx,
        config=dataclasses.replace(harness.ctx.config, measurement_noise=0.0),
    )
    service = RefereeService(ctx)
    attach_members(harness, 4)
    node = harness.new_member(bandwidth=3.5)
    service.register(node, now=0.0)
    assert service.verified(node)[0] == 3.5


def test_measurement_aggregates_partials(harness):
    """The aggregate stays near the truth as the measurer count grows."""
    import dataclasses

    estimates = []
    for seed in range(5):
        ctx = dataclasses.replace(
            harness.ctx,
            config=dataclasses.replace(
                harness.ctx.config, bandwidth_measurers=8, measurement_noise=0.1
            ),
        )
        service = RefereeService(ctx)
        node = harness.new_member(bandwidth=10.0)
        service.register(node, now=0.0)
        estimates.append(service.verified(node)[0])
    assert sum(estimates) / len(estimates) == pytest.approx(10.0, rel=0.1)


def test_root_btp_infinite(harness, service):
    import math

    assert math.isinf(service.verified_btp(harness.tree.root, now=10.0))


def test_referee_counts(harness, service):
    attach_members(harness, 6)
    node = harness.new_member()
    service.register(node, now=0.0)
    expected = harness.ctx.config.age_referees + harness.ctx.config.bandwidth_referees
    assert service.referee_count(node.member_id) == expected


def test_duplicate_registration_rejected(harness, service):
    attach_members(harness, 3)
    node = harness.new_member()
    service.register(node, now=0.0)
    with pytest.raises(ProtocolError):
        service.register(node, now=1.0)


def test_unregistered_falls_back_to_claims(harness, service):
    node = harness.new_member(bandwidth=1.0)
    node.claimed_bandwidth = 77.0
    bandwidth, _ = service.verified(node)
    assert bandwidth == 77.0


def test_departed_referee_is_replaced(harness, service):
    attach_members(harness, 8)
    node = harness.new_member(bandwidth=3.0)
    service.register(node, now=0.0)
    record = service._records[node.member_id]
    victim_id = record.age_referees[0]
    victim = harness.tree.members[victim_id]
    service.on_departure(victim)
    assert victim_id not in (record.age_referees + record.bandwidth_referees)
    assert service.referee_count(node.member_id) == (
        harness.ctx.config.age_referees + harness.ctx.config.bandwidth_referees
    )
    assert service.replacements >= 1
    # the record still answers with the original measurement
    assert service.verified(node)[0] == pytest.approx(3.0, rel=0.25)


def test_ward_departure_drops_record(harness, service):
    attach_members(harness, 5)
    node = harness.new_member()
    service.register(node, now=0.0)
    service.on_departure(node)
    assert not service.has_record(node.member_id)


def test_heartbeat_estimate_scales(harness, service):
    attach_members(harness, 5)
    for _ in range(3):
        node = harness.new_member()
        service.register(node, now=0.0)
    assert service.estimated_heartbeat_messages(300.0, interval_s=30.0) == 3 * 4 * 10


class TestCheaterEndToEnd:
    def _cheat(self, node):
        node.claimed_bandwidth = 100.0
        node.claimed_join_time = node.join_time - 10**7

    def test_referees_stop_cheater_climb(self, tiny_topology, tiny_oracle):
        from repro.config import ProtocolConfig

        harness = Harness(
            tiny_topology,
            tiny_oracle,
            protocol_config=ProtocolConfig(switch_interval_s=50.0),
            root_cap=1,
        )
        proto = RostProtocol(harness.ctx, use_referees=True)
        honest = harness.new_member(bandwidth=5.0, join_time=0.0)
        assert proto.place(honest, rejoin=False)
        cheater = harness.new_member(bandwidth=1.0, cap=1, join_time=0.0)
        self._cheat(cheater)
        harness.tree.attach(cheater, honest)
        proto._start_switching(cheater)
        proto.referees.register(cheater, harness.sim.now)
        harness.sim.run_until(2000.0)
        # verified bandwidth (1.0) < parent's (5.0): the guard holds
        assert cheater.parent is honest

    def test_without_referees_cheater_climbs(self, tiny_topology, tiny_oracle):
        from repro.config import ProtocolConfig

        harness = Harness(
            tiny_topology,
            tiny_oracle,
            protocol_config=ProtocolConfig(switch_interval_s=50.0),
            root_cap=1,
        )
        proto = RostProtocol(harness.ctx, use_referees=False)
        honest = harness.new_member(bandwidth=5.0, cap=5, join_time=0.0)
        assert proto.place(honest, rejoin=False)
        cheater = harness.new_member(bandwidth=1.0, cap=1, join_time=0.0)
        self._cheat(cheater)
        harness.tree.attach(cheater, honest)
        proto._start_switching(cheater)
        harness.sim.run_until(2000.0)
        # claims accepted at face value: the cheater displaces its parent
        assert cheater.parent is harness.tree.root
        assert honest.parent is cheater

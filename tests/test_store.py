"""Unit tests for the durable run store: keys, artifacts, ledger, locks.

Failure modes are the point: corrupted and truncated artifacts must
quarantine (never be trusted), a ledger from an incompatible release
must refuse to open, and concurrent multi-process writers must not lose
or corrupt each other's units.
"""

import json
import multiprocessing
import os
import sqlite3

import pytest

from repro.errors import StoreError, StoreSchemaError
from repro.experiments.pool import ExperimentJob
from repro.experiments.registry import ExperimentResult
from repro.store import (
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    FileLock,
    Ledger,
    RunStore,
    content_digest,
    unit_key,
)


def make_result(experiment_id="figX", value=1.5):
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"{experiment_id} title",
        table=f"| {experiment_id} | {value} |",
        data={"series": {"metric": [value, value + 1.0]}, "value": value},
        artifacts={"trace": [f'{{"record":"{experiment_id}"}}']},
    )


def make_job(experiment_id="figX", seed=3, **kwargs):
    return ExperimentJob.make(experiment_id, scale=0.5, seed=seed, **kwargs)


# -- keys -------------------------------------------------------------------------


def test_unit_key_is_canonical():
    base = unit_key("fig04", 0.5, 3, (("b", 2), ("a", 1)))
    assert base == unit_key("fig04", 0.5, 3, (("a", 1), ("b", 2)))
    assert len(base) == 64 and set(base) <= set("0123456789abcdef")


def test_unit_key_discriminates_every_dimension():
    base = unit_key("fig04", 0.5, 3, (("a", 1),))
    assert unit_key("fig05", 0.5, 3, (("a", 1),)) != base
    assert unit_key("fig04", 0.6, 3, (("a", 1),)) != base
    assert unit_key("fig04", 0.5, 4, (("a", 1),)) != base
    assert unit_key("fig04", 0.5, 3, (("a", 2),)) != base
    assert unit_key("fig04", 0.5, 3, (("a", 1),), (True, False)) != base


# -- artifact store ---------------------------------------------------------------


def test_artifact_round_trip_and_dedup(tmp_path):
    store = ArtifactStore(str(tmp_path))
    digest = store.put(b"payload bytes")
    assert digest == content_digest(b"payload bytes")
    assert store.put(b"payload bytes") == digest  # idempotent
    assert store.get(digest) == b"payload bytes"
    assert store.contains(digest)
    assert list(store.digests()) == [digest]


def test_artifact_missing_is_a_miss(tmp_path):
    store = ArtifactStore(str(tmp_path))
    assert store.get("0" * 64) is None


def test_corrupted_artifact_quarantines(tmp_path):
    store = ArtifactStore(str(tmp_path))
    digest = store.put(b"good bytes")
    path = os.path.join(str(tmp_path), "objects", digest[:2], digest)
    with open(path, "wb") as handle:
        handle.write(b"tampered!")
    assert store.get(digest) is None
    assert not store.contains(digest)
    assert any(name.startswith(digest) for name in store.quarantined())
    # The slot is free again: republished good bytes verify.
    assert store.put(b"good bytes") == digest
    assert store.get(digest) == b"good bytes"


def test_truncated_artifact_quarantines(tmp_path):
    store = ArtifactStore(str(tmp_path))
    digest = store.put(b"a longer payload that will be cut short")
    path = os.path.join(str(tmp_path), "objects", digest[:2], digest)
    with open(path, "r+b") as handle:
        handle.truncate(5)
    assert store.get(digest) is None
    assert any(name.startswith(digest) for name in store.quarantined())
    assert store.purge_quarantine() == 1
    assert store.quarantined() == []


def test_artifact_delete_rejects_non_digests(tmp_path):
    store = ArtifactStore(str(tmp_path))
    with pytest.raises(StoreError):
        store.delete("../../etc/passwd")


# -- ledger -----------------------------------------------------------------------


def test_ledger_unit_round_trip(tmp_path):
    ledger = Ledger(str(tmp_path / "ledger.sqlite"))
    ledger.record_unit("k1", "fig04", 0.5, 3, "{}", "d1")
    row = ledger.lookup_unit("k1")
    assert row["experiment_id"] == "fig04"
    assert row["executions"] == 1 and row["hits"] == 0
    ledger.record_hit("k1")
    ledger.record_hit("k1")
    assert ledger.lookup_unit("k1")["hits"] == 2
    # Re-recording (forced re-execution) bumps executions, keeps the key.
    ledger.record_unit("k1", "fig04", 0.5, 3, "{}", "d2")
    row = ledger.lookup_unit("k1")
    assert row["executions"] == 2 and row["artifact"] == "d2"
    assert ledger.lookup_unit("missing") is None
    assert ledger.forget_unit("k1") and not ledger.forget_unit("k1")


def test_ledger_schema_version_mismatch_refuses_to_open(tmp_path):
    path = str(tmp_path / "ledger.sqlite")
    Ledger(path)  # creates schema at the current version
    conn = sqlite3.connect(path)
    with conn:
        conn.execute(
            "UPDATE store_meta SET value='999' WHERE key='schema_version'"
        )
    conn.close()
    with pytest.raises(StoreSchemaError) as excinfo:
        Ledger(path)
    assert excinfo.value.found == "999"
    assert excinfo.value.expected == str(STORE_SCHEMA_VERSION)


def test_ledger_runs_and_totals(tmp_path):
    ledger = Ledger(str(tmp_path / "ledger.sqlite"))
    ledger.record_unit("k1", "fig04", 0.5, 3, "{}", "d1")
    ledger.record_hit("k1")
    run_id = ledger.record_run(
        name="run fig04",
        command="repro.experiments run",
        params_json="{}",
        report_artifact="r1",
        json_artifact="j1",
        units_total=1,
        units_replayed=1,
    )
    assert ledger.get_run(run_id)["name"] == "run fig04"
    with pytest.raises(StoreError):
        ledger.get_run(999)
    totals = ledger.totals()
    assert totals == {"units": 1, "executions": 1, "hits": 1, "runs": 1}
    assert ledger.referenced_artifacts() == ["d1", "j1", "r1"]


# -- file lock --------------------------------------------------------------------


def test_file_lock_is_reentrant(tmp_path):
    lock = FileLock(str(tmp_path / ".lock"))
    with lock:
        with lock:
            assert lock.held
        assert lock.held
    assert not lock.held
    with pytest.raises(RuntimeError):
        lock.release()


# -- RunStore record/replay -------------------------------------------------------


def test_record_then_replay_round_trips(tmp_path):
    store = RunStore(str(tmp_path))
    job = make_job()
    key = store.job_key(job)
    original = make_result()
    store.record_result(key, job, original)

    replayed = store.replay(key)
    assert replayed.experiment_id == original.experiment_id
    assert replayed.table == original.table
    assert replayed.data == original.data
    assert replayed.artifacts == original.artifacts
    assert store.ledger.lookup_unit(key)["hits"] == 1
    assert store.replay(store.job_key(make_job(seed=99))) is None


def test_replay_of_corrupted_payload_is_a_miss(tmp_path):
    store = RunStore(str(tmp_path))
    job = make_job()
    key = store.job_key(job)
    store.record_result(key, job, make_result())
    digest = store.ledger.lookup_unit(key)["artifact"]
    path = os.path.join(store.root, "objects", digest[:2], digest)
    with open(path, "r+b") as handle:
        handle.truncate(10)

    assert store.replay(key) is None  # quarantined, not trusted
    assert store.ledger.lookup_unit(key) is None  # row dropped: will re-run
    assert any(n.startswith(digest) for n in store.artifacts.quarantined())

    # The re-executed unit republishes and replays cleanly again.
    store.record_result(key, job, make_result())
    assert store.replay(key) is not None


def test_gc_drops_unreferenced_objects_only(tmp_path):
    store = RunStore(str(tmp_path))
    job = make_job()
    key = store.job_key(job)
    store.record_result(key, job, make_result())
    referenced = store.ledger.lookup_unit(key)["artifact"]
    orphan = store.artifacts.put(b"orphaned payload")
    outcome = store.gc()
    assert outcome["removed"] == 1
    assert store.artifacts.contains(referenced)
    assert not store.artifacts.contains(orphan)


def test_result_payload_round_trip():
    original = make_result()
    clone = ExperimentResult.from_payload(
        json.loads(json.dumps(original.to_payload(), default=str))
    )
    assert clone.experiment_id == original.experiment_id
    assert clone.title == original.title
    assert clone.table == original.table
    assert clone.data == original.data
    assert clone.artifacts == original.artifacts


# -- concurrent writers -----------------------------------------------------------


def _hammer_store(root: str, writer: int, units: int) -> None:
    store = RunStore(root)
    for index in range(units):
        job = ExperimentJob.make(
            "figX", scale=1.0, seed=writer * 1000 + index, writer=writer
        )
        result = ExperimentResult(
            experiment_id="figX",
            title="t",
            table=f"writer {writer} unit {index}",
            data={"writer": writer, "index": index},
        )
        store.record_result(store.job_key(job), job, result)


def test_two_concurrent_writers_on_one_store(tmp_path):
    """Two processes hammer one store; every unit must land intact."""
    root = str(tmp_path)
    RunStore(root)  # create the store before the writers race on schema
    units = 25
    ctx = multiprocessing.get_context("fork")
    workers = [
        ctx.Process(target=_hammer_store, args=(root, writer, units))
        for writer in (1, 2)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
        assert worker.exitcode == 0

    store = RunStore(root)
    rows = store.ledger.units()
    assert len(rows) == 2 * units
    assert all(row["executions"] == 1 for row in rows)
    for row in rows:  # every payload must verify against its digest
        assert store.artifacts.get(row["artifact"]) is not None
    assert store.artifacts.quarantined() == []

"""The experiments command-line interface."""

import json

import pytest

from repro.experiments import common
from repro.experiments.runner import main


@pytest.fixture(autouse=True)
def fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig04" in out and "fig14" in out


def test_run_command_prints_table(capsys, tmp_path):
    out_file = tmp_path / "tables.txt"
    json_file = tmp_path / "data.json"
    code = main([
        "run", "fig04",
        "--scale", "0.02",
        "--seed", "3",
        "--out", str(out_file),
        "--json", str(json_file),
    ])
    assert code == 0
    printed = capsys.readouterr().out
    assert "Fig. 4" in printed
    assert "rost" in printed
    assert "Fig. 4" in out_file.read_text()
    data = json.loads(json_file.read_text())
    assert "fig04" in data and "series" in data["fig04"]


def test_run_unknown_experiment_raises():
    with pytest.raises(KeyError):
        main(["run", "fig99", "--scale", "0.02"])

"""``python -m repro.validate`` CLI: gate/diff/baseline regen, exit codes."""

import json

import pytest

from repro.experiments.common import clear_caches
from repro.validate.baseline import build_baseline, load_baseline, save_baseline
from repro.validate.cli import main

POINT = {"scale": 0.05, "seeds": [1, 2], "kwargs": {"sizes": [2000]}}


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture(scope="module")
def tiny_baseline_dir(tmp_path_factory):
    """A baseline directory for fig07 at a ~1 s operating point."""
    clear_caches()
    directory = tmp_path_factory.mktemp("baselines")
    baseline = build_baseline("fig07", **POINT)
    save_baseline(baseline, str(directory / "fig07.json"))
    return directory


class TestGateCommand:
    def test_pass_exits_zero_with_summary(self, tiny_baseline_dir, capsys):
        code = main(["gate", "--baseline", str(tiny_baseline_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS fig07" in out
        assert "gate: PASS (1/1 baselines)" in out

    def test_json_and_report_outputs(self, tiny_baseline_dir, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(
            [
                "gate",
                "--baseline",
                str(tiny_baseline_dir),
                "--json",
                "--report",
                str(report_path),
            ]
        )
        assert code == 0
        stdout_payload = json.loads(capsys.readouterr().out)
        file_payload = json.loads(report_path.read_text())
        assert stdout_payload == file_payload
        assert file_payload["kind"] == "gate"
        assert file_payload["passed"] is True
        assert file_payload["gates"][0]["experiment_id"] == "fig07"

    def test_tampered_baseline_fails_with_structured_report(
        self, tiny_baseline_dir, tmp_path, capsys
    ):
        baseline = load_baseline(str(tiny_baseline_dir / "fig07.json"))
        payload = baseline.to_payload()
        for summary in payload["metrics"].values():
            summary["values"] = [v * 2 for v in summary["values"]]
            summary["mean"] *= 2
        bad_dir = tmp_path / "tampered"
        bad_dir.mkdir()
        (bad_dir / "fig07.json").write_text(json.dumps(payload))
        code = main(["gate", "--baseline", str(bad_dir), "--json"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["passed"] is False
        failures = report["gates"][0]["metric_failures"]
        assert failures and all(f["detail"] for f in failures)

    def test_missing_directory_is_usage_error(self, tmp_path, capsys):
        code = main(["gate", "--baseline", str(tmp_path / "nope")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_seed_list_is_usage_error(self, tiny_baseline_dir, capsys):
        code = main(
            ["gate", "--baseline", str(tiny_baseline_dir), "--seeds", "1,x"]
        )
        assert code == 2
        assert "comma-separated" in capsys.readouterr().err


class TestDiffCommand:
    def test_single_oracle_json(self, capsys):
        code = main(["diff", "--oracle", "delay_oracle", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "differential"
        assert payload["passed"] is True
        assert [o["oracle"] for o in payload["oracles"]] == ["delay_oracle"]

    def test_unknown_oracle_rejected_by_argparse(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["diff", "--oracle", "nope"])
        assert excinfo.value.code == 2

    def test_report_file(self, tmp_path, capsys):
        report_path = tmp_path / "diff.json"
        code = main(
            [
                "diff",
                "--oracle",
                "episode_pricing",
                "--report",
                str(report_path),
            ]
        )
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["oracles"][0]["passed"] is True
        assert "PASS episode_pricing" in capsys.readouterr().out


class TestBaselineRegen:
    def test_regen_preserves_operating_point_and_declarations(
        self, tiny_baseline_dir, capsys
    ):
        before = load_baseline(str(tiny_baseline_dir / "fig07.json"))
        code = main(
            [
                "baseline",
                "regen",
                "--baseline",
                str(tiny_baseline_dir),
                "--only",
                "fig07",
            ]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        after = load_baseline(str(tiny_baseline_dir / "fig07.json"))
        assert after.scale == before.scale
        assert after.seeds == before.seeds
        assert after.kwargs == before.kwargs
        assert after.tolerance == before.tolerance
        # Deterministic experiments: a regen reproduces the same values.
        assert after.metrics["series.rost[0]"].values == (
            before.metrics["series.rost[0]"].values
        )

    def test_regen_unknown_experiment_is_error(self, tmp_path, capsys):
        code = main(
            ["baseline", "regen", "--baseline", str(tmp_path), "--only", "fig99"]
        )
        assert code == 2
        assert "no existing baseline or default spec" in capsys.readouterr().err

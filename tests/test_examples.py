"""The example scripts must run end-to-end in --fast mode."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), "--fast", *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_quickstart():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "disruptions per lifetime" in proc.stdout
    assert "BTP switches" in proc.stdout


def test_flash_crowd():
    proc = run_example("flash_crowd.py")
    assert proc.returncode == 0, proc.stderr
    assert "min-depth" in proc.stdout and "rost" in proc.stdout


def test_recovery_comparison():
    proc = run_example("recovery_comparison.py")
    assert proc.returncode == 0, proc.stderr
    assert "cer-k3-b5" in proc.stdout
    assert "single-source" in proc.stdout


def test_cheat_prevention():
    proc = run_example("cheat_prevention.py", "--cheaters", "0.15")
    assert proc.returncode == 0, proc.stderr
    assert "referees on" in proc.stdout
    assert "claims trusted" in proc.stdout


def test_tree_anatomy():
    proc = run_example("tree_anatomy.py")
    assert proc.returncode == 0, proc.stderr
    assert "rost" in proc.stdout
    assert "BTP violations" in proc.stdout

"""Interval algebra."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.multitree.intervals import (
    clip_intervals,
    intersect_many,
    intersect_two,
    merge_intervals,
    total_length,
)


class TestMerge:
    def test_disjoint_kept(self):
        assert merge_intervals([(3, 4), (1, 2)]) == [(1, 2), (3, 4)]

    def test_overlapping_coalesced(self):
        assert merge_intervals([(1, 3), (2, 5)]) == [(1, 5)]

    def test_touching_coalesced(self):
        assert merge_intervals([(1, 2), (2, 3)]) == [(1, 3)]

    def test_contained_absorbed(self):
        assert merge_intervals([(1, 10), (3, 4)]) == [(1, 10)]

    def test_empty_and_degenerate(self):
        assert merge_intervals([]) == []
        assert merge_intervals([(5, 5), (7, 6)]) == []


class TestClip:
    def test_clip_inside(self):
        assert clip_intervals([(0, 10)], 2, 5) == [(2, 5)]

    def test_clip_outside_dropped(self):
        assert clip_intervals([(0, 1), (9, 12)], 2, 5) == []

    def test_clip_partial(self):
        assert clip_intervals([(1, 3), (4, 8)], 2, 5) == [(2, 3), (4, 5)]

    def test_empty_window(self):
        assert clip_intervals([(0, 10)], 5, 5) == []


class TestIntersect:
    def test_two(self):
        a = [(0, 5), (10, 15)]
        b = [(3, 12)]
        assert intersect_two(a, b) == [(3, 5), (10, 12)]

    def test_many(self):
        sets = [[(0, 10)], [(2, 8)], [(4, 12)]]
        assert intersect_many(sets) == [(4, 8)]

    def test_disjoint_yields_nothing(self):
        assert intersect_many([[(0, 1)], [(2, 3)]]) == []

    def test_empty_family(self):
        assert intersect_many([]) == []

    def test_empty_member(self):
        assert intersect_many([[(0, 1)], []]) == []


def test_total_length_counts_overlap_once():
    assert total_length([(0, 2), (1, 3)]) == pytest.approx(3.0)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
            lambda p: (min(p), max(p))
        ),
        max_size=12,
    ),
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
            lambda p: (min(p), max(p))
        ),
        max_size=12,
    ),
)
def test_intersection_properties(a, b):
    inter = intersect_two(a, b)
    # intersection is contained in both and never longer than either
    assert total_length(inter) <= total_length(a) + 1e-9
    assert total_length(inter) <= total_length(b) + 1e-9
    # commutative
    assert inter == intersect_two(b, a)
    # merged output is sorted and disjoint
    for (s1, e1), (s2, e2) in zip(inter, inter[1:]):
        assert e1 < s2

"""The event-driven episode simulator must agree with the vectorised model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RecoveryError
from repro.recovery.episode import RepairSource, starvation_episode
from repro.recovery.packet_sim import EpisodeSimulator, simulate_episode


def src(rate, has_data=True, member_id=1, delay=10.0):
    return RepairSource(
        member_id=member_id, rate_pps=rate, has_data=has_data, delay_ms=delay
    )


def both(sources, gap=150, rate=10.0, buffer_s=5.0, detect=0.5, hop=0.5, striped=True):
    kwargs = dict(
        gap_packets=gap,
        packet_rate_pps=rate,
        buffer_ahead_s=buffer_s,
        detect_s=detect,
        request_hop_s=hop,
        sources=sources,
        striped=striped,
    )
    return starvation_episode(**kwargs), simulate_episode(**kwargs)


def assert_equivalent(vectorised, simulated):
    assert vectorised.gap_packets == simulated.gap_packets
    assert vectorised.repaired_in_time == simulated.repaired_in_time
    assert vectorised.missed_packets == simulated.missed_packets
    assert vectorised.starving_s == pytest.approx(simulated.starving_s)
    assert vectorised.coverage == pytest.approx(simulated.coverage)
    assert vectorised.repair_end_s == pytest.approx(simulated.repair_end_s, abs=1e-6)


class TestEquivalence:
    def test_single_full_rate_source(self):
        assert_equivalent(*both([src(10.0)], buffer_s=30.0))

    def test_partial_single_source(self):
        assert_equivalent(*both([src(6.0)]))

    def test_striped_multi_source(self):
        assert_equivalent(*both([src(4.0), src(3.0, member_id=2), src(5.0, member_id=3)]))

    def test_sequential_multi_source(self):
        assert_equivalent(
            *both(
                [src(0.0), src(7.0, has_data=False, member_id=2), src(4.0, member_id=3)],
                striped=False,
            )
        )

    def test_no_sources(self):
        assert_equivalent(*both([]))

    def test_zero_gap(self):
        assert_equivalent(*both([src(5.0)], gap=0))


@settings(max_examples=50, deadline=None)
@given(
    rates=st.lists(st.floats(0.0, 9.0), min_size=0, max_size=5),
    dead=st.lists(st.booleans(), min_size=5, max_size=5),
    gap=st.integers(0, 180),
    buffer_s=st.floats(1.0, 30.0),
    detect=st.floats(0.0, 5.0),
    hop=st.floats(0.0, 2.0),
    striped=st.booleans(),
)
def test_models_agree_on_random_episodes(rates, dead, gap, buffer_s, detect, hop, striped):
    sources = [
        src(r, has_data=dead[i], member_id=i + 1) for i, r in enumerate(rates)
    ]
    vectorised, simulated = both(
        sources, gap=gap, buffer_s=buffer_s, detect=detect, hop=hop, striped=striped
    )
    assert_equivalent(vectorised, simulated)


class TestPacketRecords:
    def test_per_packet_fates_recorded(self):
        sim = EpisodeSimulator(
            gap_packets=50,
            packet_rate_pps=10.0,
            buffer_ahead_s=10.0,
            detect_s=0.5,
            request_hop_s=0.5,
            sources=[src(5.0), src(5.0, member_id=2)],
            striped=True,
        )
        outcome = sim.run()
        arrived = [r for r in sim.records if r.arrival_s is not None]
        assert len(arrived) > 0
        assert sum(r.in_time for r in sim.records) == outcome.repaired_in_time
        # every delivered packet knows its source
        assert all(r.source_id is not None for r in arrived)
        # arrivals within one source are strictly increasing
        by_source = {}
        for record in arrived:
            by_source.setdefault(record.source_id, []).append(record.arrival_s)
        for arrivals in by_source.values():
            assert arrivals == sorted(arrivals)

    def test_validation(self):
        with pytest.raises(RecoveryError):
            EpisodeSimulator(-1, 10.0, 5.0, 0.5, 0.5, [], True)
        with pytest.raises(RecoveryError):
            EpisodeSimulator(10, 0.0, 5.0, 0.5, 0.5, [], True)

"""Packet-level starvation episodes: deadlines, striping, fallbacks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RecoveryError
from repro.recovery.episode import RepairSource, starvation_episode


def src(rate, has_data=True, member_id=1, delay=10.0):
    return RepairSource(member_id=member_id, rate_pps=rate, has_data=has_data, delay_ms=delay)


def episode(sources, gap=150, rate=10.0, buffer_s=5.0, detect=5.0, hop=0.5, striped=True):
    return starvation_episode(
        gap_packets=gap,
        packet_rate_pps=rate,
        buffer_ahead_s=buffer_s,
        detect_s=detect,
        request_hop_s=hop,
        sources=sources,
        striped=striped,
    )


class TestBasics:
    def test_zero_gap_is_free(self):
        out = episode([], gap=0)
        assert out.starving_s == 0.0
        assert out.missed_packets == 0

    def test_no_sources_loses_everything(self):
        out = episode([])
        assert out.missed_packets == 150
        assert out.starving_s == pytest.approx(15.0)
        assert out.coverage == 0.0

    def test_full_rate_source_with_slack_repairs_everything(self):
        # rate 10 source covers the stream; generous buffer absorbs detection
        out = episode([src(10.0)], buffer_s=30.0)
        assert out.missed_packets == 0
        assert out.repaired_in_time == 150
        assert out.coverage == pytest.approx(1.0)

    def test_detection_time_eats_slack(self):
        # buffer exactly equals detection: a full-rate source still misses a
        # little because each packet takes 1/rate to send
        out = episode([src(10.0)], buffer_s=5.0, detect=5.0, hop=0.0)
        assert 0 < out.missed_packets <= 150

    def test_dataless_sources_cost_a_hop(self):
        direct = episode([src(10.0)], buffer_s=7.0, hop=1.0)
        behind_nack = episode(
            [src(10.0, has_data=False), src(10.0, member_id=2)],
            buffer_s=7.0,
            hop=1.0,
        )
        assert behind_nack.missed_packets >= direct.missed_packets

    def test_invalid_arguments(self):
        with pytest.raises(RecoveryError):
            episode([], gap=-1)
        with pytest.raises(RecoveryError):
            episode([], rate=0.0)
        with pytest.raises(RecoveryError):
            episode([], buffer_s=-1.0)


class TestStriping:
    def test_partial_coverage_matches_residual_fraction(self):
        # a single source with 60% of the stream rate: packets whose
        # (n mod 100) falls outside the covered range are unassigned and
        # lost regardless of deadlines
        out = episode([src(6.0)], buffer_s=100.0)
        assert out.coverage == pytest.approx(0.6)
        expected_missed = sum(1 for k in range(150) if (k % 100) >= 60)
        assert out.missed_packets == expected_missed

    def test_two_sources_stripe_ranges(self):
        out = episode([src(6.0), src(4.0, member_id=2)], buffer_s=100.0)
        assert out.coverage == pytest.approx(1.0)
        assert out.missed_packets == 0

    def test_sources_beyond_full_rate_unused(self):
        out = episode(
            [src(10.0), src(9.0, member_id=2), src(9.0, member_id=3)],
            buffer_s=100.0,
        )
        assert out.coverage == pytest.approx(1.0)

    def test_zero_rate_sources_skipped(self):
        out = episode([src(0.0), src(10.0, member_id=2)], buffer_s=100.0)
        assert out.coverage == pytest.approx(1.0)

    def test_affected_sources_supply_nothing(self):
        out = episode([src(10.0, has_data=False)], buffer_s=100.0)
        assert out.coverage == 0.0
        assert out.missed_packets == 150


class TestSequential:
    def test_first_usable_source_serves_all(self):
        out = episode([src(10.0)], striped=False, buffer_s=100.0)
        assert out.missed_packets == 0
        assert out.coverage == pytest.approx(1.0)

    def test_slow_single_source_misses_tail(self):
        out = episode([src(2.0)], striped=False, buffer_s=5.0)
        # 150 packets at 2 pkt/s takes 75 s; most deadlines pass
        assert out.missed_packets > 100

    def test_second_source_not_aggregated(self):
        """Sequential repair cannot pool residual bandwidths (the key
        difference from CER)."""
        sources = [src(5.0), src(5.0, member_id=2)]
        seq = episode(sources, striped=False, buffer_s=10.0)
        cer = episode(sources, striped=True, buffer_s=10.0)
        assert cer.missed_packets < seq.missed_packets

    def test_falls_through_dead_sources(self):
        out = episode(
            [src(0.0), src(8.0, has_data=False, member_id=2), src(10.0, member_id=3)],
            striped=False,
            buffer_s=100.0,
        )
        assert out.coverage == pytest.approx(1.0)

    def test_all_dead_sources(self):
        out = episode([src(0.0), src(5.0, has_data=False, member_id=2)], striped=False)
        assert out.missed_packets == 150


class TestMonotonicity:
    def test_bigger_buffer_never_hurts(self):
        sources = [src(4.0), src(3.0, member_id=2)]
        prev = None
        for buffer_s in [5.0, 10.0, 20.0, 30.0]:
            out = episode(sources, buffer_s=buffer_s)
            if prev is not None:
                assert out.missed_packets <= prev
            prev = out.missed_packets

    def test_more_group_members_never_hurt_striped(self):
        sources = [src(3.0, member_id=i) for i in range(1, 5)]
        prev = None
        for k in range(1, 5):
            out = episode(sources[:k])
            if prev is not None:
                assert out.missed_packets <= prev + 1  # hop jitter tolerance
            prev = out.missed_packets


@settings(max_examples=60, deadline=None)
@given(
    rates=st.lists(st.floats(0.0, 9.0), min_size=0, max_size=5),
    buffer_s=st.floats(1.0, 30.0),
    gap=st.integers(0, 200),
    striped=st.booleans(),
)
def test_episode_bounds(rates, buffer_s, gap, striped):
    sources = [src(r, member_id=i + 1) for i, r in enumerate(rates)]
    out = episode(sources, gap=gap, buffer_s=buffer_s, striped=striped)
    assert 0 <= out.missed_packets <= gap
    assert out.repaired_in_time + out.missed_packets == gap
    assert out.starving_s == pytest.approx(out.missed_packets / 10.0)
    assert 0.0 <= out.coverage <= 1.0
    assert out.repair_end_s >= 0.0

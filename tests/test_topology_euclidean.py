"""Euclidean latency-plane underlay."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.protocols import PROTOCOLS
from repro.simulation.churn import ChurnSimulation
from repro.topology.euclidean import EuclideanUnderlay, generate_euclidean
from tests.conftest import small_sim_config


@pytest.fixture(scope="module")
def plane():
    return generate_euclidean(100, seed=9)


def test_generation_shapes(plane):
    assert plane.num_nodes == 100
    assert plane.stub_nodes == list(range(100))


def test_self_delay_zero(plane):
    assert plane.delay_ms(7, 7) == 0.0


def test_symmetry_and_positivity(plane):
    rng = np.random.default_rng(0)
    for _ in range(200):
        a, b = rng.integers(0, 100, size=2)
        d = plane.delay_ms(int(a), int(b))
        assert d == pytest.approx(plane.delay_ms(int(b), int(a)))
        if a != b:
            assert d > 0


def test_triangle_inequality(plane):
    rng = np.random.default_rng(1)
    for _ in range(200):
        a, b, c = rng.integers(0, 100, size=3)
        assert plane.delay_ms(int(a), int(b)) <= (
            plane.delay_ms(int(a), int(c)) + plane.delay_ms(int(c), int(b)) + 1e-9
        )


def test_delay_includes_access_links(plane):
    a, b = 3, 17
    raw = float(np.hypot(*(plane.positions[a] - plane.positions[b])))
    expected = raw + plane.access_delay_ms[a] + plane.access_delay_ms[b]
    assert plane.delay_ms(a, b) == pytest.approx(expected)


def test_deterministic_generation():
    p1 = generate_euclidean(50, seed=3)
    p2 = generate_euclidean(50, seed=3)
    assert np.allclose(p1.positions, p2.positions)
    assert not np.allclose(p1.positions, generate_euclidean(50, seed=4).positions)


def test_unknown_hosts_rejected(plane):
    with pytest.raises(TopologyError):
        plane.delay_ms(0, 100)


def test_generation_validation():
    with pytest.raises(TopologyError):
        generate_euclidean(0)
    with pytest.raises(TopologyError):
        generate_euclidean(10, plane_side_ms=-1.0)
    with pytest.raises(TopologyError):
        EuclideanUnderlay(
            positions=np.zeros((4, 3)), access_delay_ms=np.zeros(4)
        )


def test_churn_simulation_on_the_plane():
    """The plane duck-types the topology+oracle pair end to end."""
    plane = generate_euclidean(300, seed=5)
    cfg = small_sim_config(population=50, seed=6, measure_lifetimes=0.5)
    sim = ChurnSimulation(
        cfg,
        PROTOCOLS["rost"],
        topology=plane,
        oracle=plane,
        check_invariants=True,
    )
    result = sim.run()
    assert result.metrics.mean_population > 0
    assert result.metrics.avg_service_delay_ms > 0
    assert result.metrics.avg_stretch >= 1.0

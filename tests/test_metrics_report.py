"""Text table rendering."""

import pytest

from repro.metrics.report import format_value, render_series_table, render_table


def test_format_value_variants():
    assert format_value(None) == "-"
    assert format_value(float("nan")) == "nan"
    assert format_value(1.23456) == "1.235"
    assert format_value(0.000012) == "1.2e-05"
    assert format_value(1234567.0) == "1.23e+06"
    assert format_value("abc") == "abc"
    assert format_value(42) == "42"


def test_render_table_alignment():
    out = render_table(
        "My Figure",
        ["algo", "x"],
        [["rost", 1.5], ["min-depth", 20.25]],
    )
    lines = out.splitlines()
    assert lines[0] == "My Figure"
    assert set(lines[1]) == {"="}
    assert "rost" in out and "min-depth" in out
    # columns aligned: all data lines same width
    widths = {len(line) for line in lines[2:]}
    assert len(widths) == 1


def test_render_series_table():
    out = render_series_table(
        "Fig 4",
        "size",
        [2000, 8000],
        [("rost", [0.5, 0.8]), ("min-depth", [2.5, 4.5])],
    )
    assert "2000" in out and "8000" in out
    assert "rost" in out


def test_series_length_mismatch_rejected():
    with pytest.raises(ValueError):
        render_series_table("t", "x", [1, 2], [("a", [1.0])])

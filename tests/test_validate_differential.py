"""Differential oracles agree on a clean checkout, and their plumbing works."""

import pytest

from repro.errors import ValidationError
from repro.validate.differential import ORACLES, run_oracle, run_oracles
from repro.validate.report import REPORT_SCHEMA_VERSION


def _assert_clean(outcome):
    assert outcome.equal, [
        f"{d['path']}: {d['detail']}" for d in outcome.differences[:5]
    ]
    assert outcome.meta["comparisons"] > 0


class TestKernelOracles:
    def test_mlc_kernels_agree_after_faults(self):
        outcome = run_oracle("mlc_kernels", seed=0)
        _assert_clean(outcome)
        assert outcome.meta["members"] > 1
        assert outcome.meta["faults"] >= 1

    def test_delay_oracle_scalar_vs_batch(self):
        _assert_clean(run_oracle("delay_oracle", seed=0))

    def test_episode_pricing_closed_form_vs_packet_sim(self):
        _assert_clean(run_oracle("episode_pricing", seed=0))

    def test_different_seeds_replay_different_inputs(self):
        a = run_oracle("delay_oracle", seed=1)
        b = run_oracle("delay_oracle", seed=2)
        assert a.equal and b.equal
        assert a.meta["seed"] != b.meta["seed"]


class TestExecutionOracles:
    def test_resume_equals_uninterrupted(self):
        _assert_clean(run_oracle("resume"))

    def test_obs_on_equals_obs_off(self):
        _assert_clean(run_oracle("obs"))

    @pytest.mark.slow
    def test_serial_equals_parallel_workers(self):
        _assert_clean(run_oracle("jobs"))


class TestRegistry:
    def test_unknown_oracle(self):
        with pytest.raises(ValidationError, match="unknown differential"):
            run_oracle("nope")

    def test_run_oracles_subset_and_report_shape(self):
        report = run_oracles(["delay_oracle", "episode_pricing"], seed=3)
        assert [o.oracle for o in report.outcomes] == [
            "delay_oracle",
            "episode_pricing",
        ]
        assert report.passed
        payload = report.to_payload()
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["kind"] == "differential"
        assert all(o["passed"] for o in payload["oracles"])

    def test_all_advertised_oracles_are_callable(self):
        assert set(ORACLES) == {
            "mlc_kernels",
            "delay_oracle",
            "episode_pricing",
            "jobs",
            "resume",
            "obs",
        }

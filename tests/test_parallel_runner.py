"""Cross-process determinism and robustness of the parallel experiment pool.

The contract under test: fanning (experiment × seed) jobs out over worker
processes must produce byte-identical tables and JSON to a fully serial
``--jobs 1`` run, and a crashed or wedged worker must not change results
(its job is retried once in-process).
"""

import json
import os
import re

import pytest

from repro.experiments import common
from repro.experiments.pool import (
    ExperimentJob,
    ExperimentPool,
    execute_job,
    resolve_jobs,
)
from repro.experiments.registry import REGISTRY, ExperimentResult, register
from repro.experiments.runner import main
from repro.topology.cache import ENV_CACHE_DIR

TIMING_LINE = re.compile(r" in [0-9.]+s\]")


@pytest.fixture(autouse=True)
def fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


def _normalize(text: str) -> str:
    """Strip wall-clock timings, the only legitimately nondeterministic bytes."""
    return TIMING_LINE.sub("]", text)


def test_resolve_jobs_defaults_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs(None) == 3
    assert resolve_jobs(2) == 2
    with pytest.raises(ValueError):
        resolve_jobs(0)


def test_jobs_canonical_form():
    a = ExperimentJob.make("fig04", scale=0.1, seed=3, sizes=(2000,), b=1)
    b = ExperimentJob.make("fig04", scale=0.1, b=1, seed=3, sizes=(2000,))
    assert a == b and hash(a) == hash(b)


def test_pool_preserves_submission_order():
    jobs = [
        ExperimentJob.make("fig05", scale=0.02, seed=seed) for seed in (5, 3, 4)
    ]
    serial = ExperimentPool(jobs=1).run(jobs)
    common.clear_caches()
    parallel = ExperimentPool(jobs=3).run(jobs)
    assert [r.table for r in serial] == [r.table for r in parallel]
    assert [r.data for r in serial] == [r.data for r in parallel]


def test_cli_parallel_replicas_byte_identical(tmp_path):
    """`run fig04 --replicas 4 --jobs 4` == `--jobs 1`, byte for byte."""
    outputs = {}
    for jobs in ("1", "4"):
        out = tmp_path / f"tables-{jobs}.txt"
        dump = tmp_path / f"data-{jobs}.json"
        common.clear_caches()
        code = main([
            "run", "fig04",
            "--scale", "0.02",
            "--seed", "3",
            "--replicas", "4",
            "--jobs", jobs,
            "--out", str(out),
            "--json", str(dump),
        ])
        assert code == 0
        outputs[jobs] = (_normalize(out.read_text()), dump.read_text())
    assert outputs["1"][0] == outputs["4"][0]
    assert outputs["1"][1] == outputs["4"][1]
    data = json.loads(outputs["4"][1])
    assert data["fig04"]["seeds"] == [3, 4, 5, 6]


def _register_flaky(experiment_id: str, run):
    register(experiment_id, f"test helper {experiment_id}", "test")(run)


def test_worker_crash_is_retried_in_process():
    """A job that kills its worker is re-run (successfully) in-process.

    The helper experiment crashes only when the worker-pool initializer
    has set the shared cache directory, so the in-process retry succeeds.
    """
    experiment_id = "testcrash"

    def run(scale=1.0, seed=42, **_):
        if os.environ.get(ENV_CACHE_DIR):
            os._exit(17)
        return ExperimentResult(experiment_id, "crashy", table=f"ok seed={seed}")

    _register_flaky(experiment_id, run)
    try:
        assert ENV_CACHE_DIR not in os.environ
        pool = ExperimentPool(jobs=2)
        jobs = [ExperimentJob.make(experiment_id, seed=s) for s in (1, 2)]
        results = pool.run(jobs)
        assert [r.table for r in results] == ["ok seed=1", "ok seed=2"]
        assert pool.retried_jobs >= 1
    finally:
        REGISTRY.pop(experiment_id, None)


def test_wedged_worker_times_out_and_retries():
    experiment_id = "testslow"

    def run(scale=1.0, seed=42, **_):
        if os.environ.get(ENV_CACHE_DIR):
            import time

            time.sleep(3.0)
        return ExperimentResult(experiment_id, "slow", table=f"done seed={seed}")

    _register_flaky(experiment_id, run)
    try:
        assert ENV_CACHE_DIR not in os.environ
        pool = ExperimentPool(jobs=2, timeout_s=0.25)
        results = pool.run([ExperimentJob.make(experiment_id, seed=s) for s in (1, 2)])
        assert [r.table for r in results] == ["done seed=1", "done seed=2"]
        assert pool.retried_jobs >= 1
    finally:
        REGISTRY.pop(experiment_id, None)


def test_jobs_one_is_fully_in_process():
    """The serial path must not spawn workers (pdb/coverage support)."""
    experiment_id = "testpid"

    def run(scale=1.0, seed=42, **_):
        return ExperimentResult(experiment_id, "pid", table=str(os.getpid()))

    _register_flaky(experiment_id, run)
    try:
        results = ExperimentPool(jobs=1).run(
            [ExperimentJob.make(experiment_id, seed=s) for s in (1, 2, 3)]
        )
        assert {r.table for r in results} == {str(os.getpid())}
    finally:
        REGISTRY.pop(experiment_id, None)


def test_execute_job_round_trips_kwargs():
    result = execute_job(
        ExperimentJob.make("fig04", scale=0.02, seed=3, sizes=(2000,))
    )
    assert result.data["sizes"] == [2000]


def test_atomic_out_preserves_append_semantics(tmp_path):
    out = tmp_path / "tables.txt"
    out.write_text("previous run\n")
    code = main([
        "run", "fig05", "--scale", "0.02", "--seed", "3",
        "--jobs", "1", "--out", str(out),
    ])
    assert code == 0
    content = out.read_text()
    assert content.startswith("previous run\n")
    assert "Fig. 5" in content
    # no temp droppings left behind
    assert list(tmp_path.glob(".repro-out-*")) == []

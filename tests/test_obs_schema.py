"""Strict validation of every trace record type (repro.obs.schema)."""

import json

import pytest

from repro.obs.schema import (
    RECORD_TYPES,
    TRACE_SCHEMA_VERSION,
    TraceSchemaError,
    validate_line,
    validate_record,
    validate_trace_lines,
)

VALID = {
    "run_start": {
        "type": "run_start",
        "v": TRACE_SCHEMA_VERSION,
        "kind": "churn",
        "protocol": "rost",
        "population": 40,
        "seed": 9,
        "horizon_s": 300.0,
    },
    "event": {"type": "event", "t": 1.5, "seq": 3, "label": "tick", "priority": 0},
    "fault": {"type": "fault", "t": 2.0, "label": "fault:outage"},
    "switch": {"type": "switch", "t": 3.0, "op": "swap", "member": 7},
    "disruption": {
        "type": "disruption",
        "t": 4.0,
        "cause": "failure",
        "failed": 7,
        "subtree_size": 3,
        "in_window": True,
        "co_failed": [2, 7, 9],
    },
    "episode_open": {"type": "episode_open", "t": 4.0, "member": 9, "cause": "failure"},
    "episode_close": {"type": "episode_close", "t": 5.0, "member": 9},
    "stripe_outage_open": {
        "type": "stripe_outage_open",
        "t": 4.0,
        "member": 9,
        "stripe": 2,
        "cause": "fault:node-crash",
    },
    "stripe_outage_close": {
        "type": "stripe_outage_close",
        "t": 5.0,
        "member": 9,
        "stripe": 2,
    },
    "run_end": {
        "type": "run_end",
        "t": 300.0,
        "events_processed": 1234,
        "disruptions": 5,
        "switches": 2,
    },
}


@pytest.mark.parametrize("record_type", sorted(RECORD_TYPES))
def test_valid_record_per_type(record_type):
    validate_record(VALID[record_type])
    validate_line(json.dumps(VALID[record_type], separators=(",", ":")))


def test_valid_covers_all_record_types():
    assert set(VALID) == set(RECORD_TYPES)


def test_optional_run_start_fields_accepted():
    record = dict(VALID["run_start"])
    record.update(
        scenario="stub-outage", scale=0.1, replica=2, switch_interval_s=30.0
    )
    validate_record(record)


def _rejects(record):
    with pytest.raises(TraceSchemaError):
        validate_record(record)


def test_rejects_unknown_type():
    _rejects({"type": "mystery", "t": 1.0})


def test_rejects_missing_type():
    _rejects({"t": 1.0, "label": "x"})


def test_rejects_missing_required_field():
    record = dict(VALID["event"])
    del record["seq"]
    _rejects(record)


def test_rejects_unknown_field():
    _rejects({**VALID["fault"], "wall_s": 0.001})


def test_rejects_bool_masquerading_as_int():
    _rejects({**VALID["event"], "seq": True})


def test_rejects_string_for_float():
    _rejects({**VALID["fault"], "t": "2.0"})


def test_rejects_unsorted_co_failed():
    _rejects({**VALID["disruption"], "co_failed": [9, 2, 7]})


def test_rejects_non_int_co_failed():
    _rejects({**VALID["disruption"], "co_failed": [2, "7"]})


def test_rejects_bad_switch_op():
    _rejects({**VALID["switch"], "op": "teleport"})


def test_rejects_wrong_schema_version():
    _rejects({**VALID["run_start"], "v": TRACE_SCHEMA_VERSION + 1})


def test_rejects_non_object_line():
    with pytest.raises(TraceSchemaError):
        validate_line("[1,2,3]")


def test_rejects_invalid_json_line():
    with pytest.raises(TraceSchemaError):
        validate_line("{not json")


def test_validate_trace_lines_reports_line_number():
    lines = [
        json.dumps(VALID["fault"], separators=(",", ":")),
        json.dumps({"type": "bogus"}, separators=(",", ":")),
    ]
    with pytest.raises(TraceSchemaError, match="line 2"):
        validate_trace_lines(lines)


def test_schema_error_is_value_error():
    assert issubclass(TraceSchemaError, ValueError)

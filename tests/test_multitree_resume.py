"""Byte-identity and resume guarantees for the multi-tree campaign.

The ``multitree_resilience`` family rides the same pool/store/obs
chokepoint as the fault campaigns, so it inherits the PR-7 contract:
``--out``/``--json`` bytes are identical at any ``--jobs`` value, and a
run interrupted mid-campaign and restarted with ``--resume`` converges
to the uninterrupted bytes while replaying (not re-executing) completed
units.
"""

import json
import os
import shutil
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import common
from repro.experiments.runner import main
from repro.store import RunStore

SPEC = {
    "name": "multitree-resume-small",
    "population": 400,
    "warmup_lifetimes": 0.25,
    "measure_lifetimes": 0.5,
    "protocols": ["rost"],
    "tree_counts": [1, 2],
    "seeds": [1],
    "root_bandwidth": 4.0,
    "scenarios": [
        {"name": "baseline", "faults": []},
        {
            "name": "crash",
            "faults": [{"kind": "node-crash", "at_frac": 0.5, "count": 6}],
        },
    ],
}
SCALE = "0.1"
UNITS = 4  # scenarios x protocols x tree_counts x seeds


@pytest.fixture(autouse=True)
def fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


def _campaign_args(spec_path, out, json_path, *extra, jobs="1"):
    return [
        "multitree_campaign",
        str(spec_path),
        "--scale",
        SCALE,
        "--jobs",
        jobs,
        "--out",
        str(out),
        "--json",
        str(json_path),
        *extra,
    ]


@pytest.fixture(scope="module")
def seeded_campaign(tmp_path_factory):
    """Baseline output bytes plus a fully-populated store to clone from."""
    base = tmp_path_factory.mktemp("multitree-campaign")
    spec_path = base / "spec.json"
    spec_path.write_text(json.dumps(SPEC))

    common.clear_caches()
    assert main(_campaign_args(spec_path, base / "base.txt", base / "base.json")) == 0

    store_root = base / "full.runstore"
    common.clear_caches()
    code = main(
        _campaign_args(
            spec_path,
            base / "stored.txt",
            base / "stored.json",
            "--store",
            str(store_root),
        )
    )
    assert code == 0
    assert (base / "stored.txt").read_bytes() == (base / "base.txt").read_bytes()
    assert (base / "stored.json").read_bytes() == (base / "base.json").read_bytes()
    return {
        "spec_path": spec_path,
        "out": (base / "base.txt").read_bytes(),
        "json": (base / "base.json").read_bytes(),
        "store": store_root,
    }


def test_jobs_4_is_byte_identical_to_serial(seeded_campaign, tmp_path):
    """The headline determinism claim: fan-out order, not worker count,
    defines the report."""
    common.clear_caches()
    code = main(
        _campaign_args(
            seeded_campaign["spec_path"],
            tmp_path / "par.txt",
            tmp_path / "par.json",
            jobs="4",
        )
    )
    assert code == 0
    assert (tmp_path / "par.txt").read_bytes() == seeded_campaign["out"]
    assert (tmp_path / "par.json").read_bytes() == seeded_campaign["json"]


def _interrupt(store_root: Path) -> str:
    """Forget one completed unit, as a kill mid-campaign would."""
    conn = sqlite3.connect(str(store_root / "ledger.sqlite"))
    victim = conn.execute(
        "SELECT unit_key FROM units ORDER BY unit_key LIMIT 1"
    ).fetchone()[0]
    with conn:
        conn.execute("DELETE FROM units WHERE unit_key = ?", (victim,))
    conn.close()
    return victim


@pytest.mark.parametrize("jobs", [1, 4])
def test_resume_is_byte_identical_and_replays_completed_units(
    seeded_campaign, tmp_path, jobs
):
    store_root = tmp_path / "interrupted.runstore"
    shutil.copytree(seeded_campaign["store"], store_root)
    victim = _interrupt(store_root)

    code = main(
        _campaign_args(
            seeded_campaign["spec_path"],
            tmp_path / "resumed.txt",
            tmp_path / "resumed.json",
            "--store",
            str(store_root),
            "--resume",
            jobs=str(jobs),
        )
    )
    assert code == 0
    assert (tmp_path / "resumed.txt").read_bytes() == seeded_campaign["out"]
    assert (tmp_path / "resumed.json").read_bytes() == seeded_campaign["json"]

    store = RunStore(str(store_root))
    rows = store.ledger.units()
    assert len(rows) == UNITS
    for row in rows:
        assert row["executions"] == 1
        assert row["hits"] == (0 if row["unit_key"] == victim else 1)
    run = store.ledger.runs()[-1]
    assert run["units_total"] == UNITS
    assert run["units_replayed"] == UNITS - 1


@pytest.mark.slow
def test_sigkill_resume_byte_identity(tmp_path):
    """SIGKILL a live multitree campaign mid-run, resume, compare bytes."""
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(SPEC))
    env = dict(os.environ, PYTHONPATH="src")
    repo = str(Path(__file__).resolve().parents[1])

    def run(*extra, out, json_path):
        cmd = [
            sys.executable,
            "-m",
            "repro.experiments",
            *_campaign_args(spec_path, out, json_path, *extra),
        ]
        subprocess.run(cmd, cwd=repo, env=env, check=True)

    run(out=tmp_path / "base.txt", json_path=tmp_path / "base.json")

    store_root = tmp_path / "killed.runstore"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            *_campaign_args(
                spec_path,
                tmp_path / "dead.txt",
                tmp_path / "dead.json",
                "--store",
                str(store_root),
            ),
        ],
        cwd=repo,
        env=env,
        start_new_session=True,
    )
    ledger_path = store_root / "ledger.sqlite"
    deadline = time.monotonic() + 300.0
    committed = 0
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break  # finished before the kill: still a valid resume
            if ledger_path.exists():
                try:
                    conn = sqlite3.connect(str(ledger_path), timeout=5.0)
                    committed = conn.execute(
                        "SELECT COUNT(*) FROM units"
                    ).fetchone()[0]
                    conn.close()
                except sqlite3.Error:
                    committed = 0
            if committed >= 1:
                break
            time.sleep(0.05)
        assert committed >= 1 or proc.poll() is not None
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)

    run(
        "--store",
        str(store_root),
        "--resume",
        out=tmp_path / "resumed.txt",
        json_path=tmp_path / "resumed.json",
    )
    assert (tmp_path / "resumed.txt").read_bytes() == (
        tmp_path / "base.txt"
    ).read_bytes()
    assert (tmp_path / "resumed.json").read_bytes() == (
        tmp_path / "base.json"
    ).read_bytes()

    store = RunStore(str(store_root))
    rows = store.ledger.units()
    assert len(rows) == UNITS
    assert all(row["executions"] == 1 for row in rows)

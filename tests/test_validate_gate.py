"""Gate engine: paired/unpaired comparison, trends, clean-HEAD acceptance.

The committed baselines are regenerated — after an *intentional*
behavior change — with::

    REPRO_REGEN_BASELINES=1 PYTHONPATH=src python -m pytest tests/test_validate_gate.py
"""

import math
import os

import pytest

from repro.validate.baseline import (
    ENV_REGEN_BASELINES,
    Baseline,
    MetricBaseline,
    Tolerance,
    TrendSpec,
    load_baseline_dir,
    regen_baselines,
)
from repro.validate.gate import run_gate, run_gates

BASELINE_DIR = "tests/golden/baselines"


def _baseline(metrics, trends=(), tolerance=None, seeds=(1, 2)):
    return Baseline(
        experiment_id="figXX",
        scale=0.5,
        seeds=list(seeds),
        tolerance=tolerance or Tolerance(rtol=0.05, atol=1e-9),
        trends=list(trends),
        metrics={
            path: MetricBaseline.from_values(values)
            for path, values in metrics.items()
        },
    )


class TestPairedComparison:
    def test_identical_samples_pass(self):
        baseline = _baseline({"a": [1.0, 2.0]})
        outcome = run_gate(baseline, samples=[{"a": 1.0}, {"a": 2.0}])
        assert outcome.mode == "paired"
        assert outcome.passed
        assert outcome.metrics_checked == 1

    def test_within_rtol_passes_beyond_fails(self):
        baseline = _baseline({"a": [100.0, 200.0]})
        assert run_gate(
            baseline, samples=[{"a": 104.0}, {"a": 208.0}]
        ).passed
        outcome = run_gate(baseline, samples=[{"a": 106.0}, {"a": 200.0}])
        assert not outcome.passed
        (verdict,) = outcome.metric_failures
        assert verdict.path == "a"
        assert "1/2 seeds out of tolerance" in verdict.detail

    def test_sample_count_change_fails(self):
        baseline = _baseline({"a": [1.0, 2.0]})
        outcome = run_gate(baseline, samples=[{"a": 1.0}])
        assert not outcome.passed
        assert "sample count changed" in outcome.metric_failures[0].detail

    def test_missing_paths_fail_both_directions(self):
        baseline = _baseline({"a": [1.0, 1.0]})
        outcome = run_gate(
            baseline, samples=[{"b": 1.0}, {"b": 1.0}]
        )
        details = {v.path: v.detail for v in outcome.metric_failures}
        assert "missing from the current report" in details["a"]
        assert "missing from the baseline" in details["b"]


class TestUnpairedComparison:
    def test_overridden_seeds_loosen_to_ci_overlap(self):
        baseline = _baseline({"a": [100.0, 104.0]})  # mean 102, wide CI
        outcome = run_gate(
            baseline, seeds=[9, 10], samples=[{"a": 110.0}, {"a": 112.0}]
        )
        assert outcome.mode == "unpaired"
        assert outcome.passed  # CI bands absorb the shift

    def test_far_mean_still_fails(self):
        baseline = _baseline({"a": [100.0, 104.0]})
        outcome = run_gate(
            baseline, seeds=[9, 10], samples=[{"a": 300.0}, {"a": 310.0}]
        )
        assert not outcome.passed
        assert "departed the baseline CI band" in (
            outcome.metric_failures[0].detail
        )


class TestTrends:
    def test_series_order_holds_and_flips(self):
        trend = TrendSpec(
            name="a-beats-b", kind="series_order", lower="a", upper="b"
        )
        baseline = _baseline(
            {
                "series.a[0]": [1.0, 1.0],
                "series.b[0]": [2.0, 2.0],
            },
            trends=[trend],
        )
        good = run_gate(
            baseline,
            samples=[
                {"series.a[0]": 1.0, "series.b[0]": 2.0},
                {"series.a[0]": 1.0, "series.b[0]": 2.0},
            ],
        )
        assert good.passed
        flipped = run_gate(
            baseline,
            samples=[
                {"series.a[0]": 3.0, "series.b[0]": 2.0},
                {"series.a[0]": 3.0, "series.b[0]": 2.0},
            ],
        )
        trend_verdicts = [t for t in flipped.trends if not t.passed]
        assert len(trend_verdicts) == 1
        assert "ordering flipped" in trend_verdicts[0].detail

    def test_series_order_missing_counterpart(self):
        trend = TrendSpec(
            name="a-beats-b", kind="series_order", lower="a", upper="b"
        )
        baseline = _baseline({"series.a[0]": [1.0, 1.0]}, trends=[trend])
        outcome = run_gate(
            baseline,
            samples=[{"series.a[0]": 1.0}, {"series.a[0]": 1.0}],
        )
        assert not outcome.trends[0].passed
        assert "missing counterpart" in outcome.trends[0].detail

    def test_path_order_with_margins(self):
        trend = TrendSpec(
            name="x-below-y",
            kind="path_order",
            lower="x",
            upper="y",
            rel_margin=0.5,
        )
        baseline = _baseline({"x": [1.0, 1.0], "y": [1.0, 1.0]}, trends=[trend])
        # 1.4 <= 1.0 * 1.5: inside the declared margin.
        outcome = run_gate(baseline, samples=[{"x": 1.4, "y": 1.0}] * 2)
        assert outcome.trends[0].passed
        outcome = run_gate(baseline, samples=[{"x": 1.6, "y": 1.0}] * 2)
        assert not outcome.trends[0].passed

    def test_nan_operand_fails_the_trend(self):
        trend = TrendSpec(
            name="x-below-y", kind="path_order", lower="x", upper="y"
        )
        baseline = _baseline({"x": [1.0, 1.0], "y": [2.0, 2.0]}, trends=[trend])
        outcome = run_gate(
            baseline, samples=[{"x": 1.0, "y": math.nan}] * 2
        )
        assert not outcome.trends[0].passed
        assert "NaN" in outcome.trends[0].detail


class TestReportShape:
    def test_payload_carries_context_for_triage(self):
        baseline = _baseline({"a": [1.0, 2.0]})
        outcome = run_gate(baseline, samples=[{"a": 9.0}, {"a": 9.0}])
        payload = outcome.to_payload()
        assert payload["mode"] == "paired"
        assert payload["metrics"] == {"checked": 1, "failed": 1}
        failure = payload["metric_failures"][0]
        assert failure["baseline"]["mean"] == 1.5
        assert failure["current"]["mean"] == 9.0
        assert failure["detail"]


class TestCleanHead:
    """The acceptance criterion: gates pass on an unmodified checkout."""

    def test_fig07_gate_passes_on_clean_head(self):
        if os.environ.get(ENV_REGEN_BASELINES):
            written = regen_baselines(BASELINE_DIR)
            assert written, "regen produced no baseline files"
        baselines = load_baseline_dir(BASELINE_DIR, only=["fig07"])
        report = run_gates(baselines, baseline_dir=BASELINE_DIR)
        assert report.passed, report.render_text()
        assert report.outcomes[0].mode == "paired"

    @pytest.mark.slow
    def test_all_gates_pass_on_clean_head(self):
        baselines = load_baseline_dir(BASELINE_DIR)
        report = run_gates(baselines, baseline_dir=BASELINE_DIR, jobs=2)
        assert report.passed, report.render_text()

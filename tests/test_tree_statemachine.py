"""Stateful property testing of the multicast tree.

Hypothesis drives arbitrary interleavings of register / attach / detach /
depart / swap / promote against a model of the membership, checking the
full structural invariant set after every step.  This is the strongest
guard against subtle layer/attached-flag corruption under operation
sequences no example-based test would think of.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.overlay.tree import MulticastTree
from tests.conftest import make_node


class TreeMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 2**31 - 1))
    def setup(self, seed):
        self.rng = np.random.default_rng(seed)
        root = make_node(0, bandwidth=3.0, cap=3, is_root=True)
        self.tree = MulticastTree(root)
        self.next_id = 1

    # -- helpers -------------------------------------------------------------

    def _random_member(self, predicate):
        candidates = [n for n in self.tree.members.values() if predicate(n)]
        if not candidates:
            return None
        return candidates[int(self.rng.integers(0, len(candidates)))]

    # -- rules ----------------------------------------------------------------

    @rule(cap=st.integers(0, 4))
    def register(self, cap):
        node = make_node(self.next_id, bandwidth=cap + 0.5, cap=cap)
        self.next_id += 1
        self.tree.add_member(node)

    @rule()
    def attach(self):
        child = self._random_member(
            lambda n: not n.attached and n.parent is None and not n.is_root
        )
        parent = self._random_member(lambda n: n.attached and n.spare_degree > 0)
        if child is None or parent is None or child is parent:
            return
        self.tree.attach(child, parent)

    @rule()
    def detach(self):
        node = self._random_member(lambda n: n.attached and not n.is_root)
        if node is None:
            return
        self.tree.detach(node)

    @rule()
    def depart(self):
        node = self._random_member(lambda n: not n.is_root)
        if node is None:
            return
        self.tree.remove_departed(node)

    @rule()
    def swap(self):
        node = self._random_member(
            lambda n: n.attached
            and n.parent is not None
            and not n.parent.is_root
            and n.parent.parent is not None
            and n.out_degree_cap >= len(n.parent.children)
        )
        if node is None:
            return
        self.tree.swap_with_parent(node, overflow_priority=lambda n: n.member_id)

    @rule()
    def promote(self):
        node = self._random_member(
            lambda n: n.attached
            and n.parent is not None
            and n.parent.parent is not None
            and n.parent.parent.spare_degree > 0
        )
        if node is None:
            return
        self.tree.promote_to_grandparent(node)

    # -- invariants ------------------------------------------------------------

    @invariant()
    def structure_is_sound(self):
        if hasattr(self, "tree"):
            self.tree.check_invariants()

    @invariant()
    def attached_count_matches(self):
        if hasattr(self, "tree"):
            actual = sum(1 for _ in self.tree.attached_nodes())
            assert actual == self.tree.num_attached


TestTreeMachine = TreeMachine.TestCase
TestTreeMachine.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)

"""Fault schedules: composition, fire plans, JSON/TOML loading."""

import json

import pytest

from repro.errors import FaultError
from repro.faults import (
    FaultSchedule,
    FlashCrowd,
    NodeCrash,
    StubDomainOutage,
    load_schedule,
)


def make_schedule():
    return FaultSchedule(
        seed=7,
        faults=(NodeCrash(at_frac=0.5), StubDomainOutage(at_s=100.0)),
    )


def test_seed_must_be_non_negative():
    with pytest.raises(FaultError):
        FaultSchedule(seed=-1)


def test_faults_must_be_faults():
    with pytest.raises(FaultError):
        FaultSchedule(faults=("not-a-fault",))


def test_compose_keeps_left_seed():
    a = FaultSchedule(seed=3, faults=(NodeCrash(at_s=1.0),))
    b = FaultSchedule(seed=9, faults=(FlashCrowd(at_s=2.0),))
    combined = a + b
    assert combined.seed == 3
    assert len(combined) == 2
    assert combined.faults == a.faults + b.faults


def test_with_seed():
    assert make_schedule().with_seed(11).seed == 11
    assert make_schedule().with_seed(11).faults == make_schedule().faults


def test_fire_plan_sorted_with_stable_ties():
    sched = FaultSchedule(
        faults=(
            NodeCrash(at_s=500.0),
            StubDomainOutage(at_frac=0.1),
            NodeCrash(at_s=500.0, count=2),
        )
    )
    plan = sched.fire_plan(2000.0)
    assert [t for t, _ in plan] == [200.0, 500.0, 500.0]
    # ties preserve schedule order
    assert plan[1][1] is sched.faults[0]
    assert plan[2][1] is sched.faults[2]


def test_spec_round_trip():
    sched = make_schedule()
    assert FaultSchedule.from_spec(sched.to_spec()) == sched


def test_from_spec_rejects_bad_specs():
    with pytest.raises(FaultError):
        FaultSchedule.from_spec({"seed": 0, "faults": [], "extra": 1})
    with pytest.raises(FaultError):
        FaultSchedule.from_spec({"faults": 3})
    with pytest.raises(FaultError):
        FaultSchedule.from_spec("nope")


def test_load_json(tmp_path):
    path = tmp_path / "sched.json"
    path.write_text(json.dumps(make_schedule().to_spec()))
    assert load_schedule(str(path)) == make_schedule()


def test_load_toml(tmp_path):
    content = """\
seed = 5

[[faults]]
kind = "stub-domain-outage"
domains = 2
at_frac = 0.5

[[faults]]
kind = "flash-crowd"
size = 10
at_s = 120.0
"""
    path = tmp_path / "sched.toml"
    path.write_text(content)
    sched = load_schedule(str(path))
    assert sched.seed == 5
    assert sched.faults == (
        StubDomainOutage(at_frac=0.5, domains=2),
        FlashCrowd(at_s=120.0, size=10),
    )

"""Clean-HEAD acceptance for the ``multitree.json`` golden baseline.

Regenerate after an *intentional* behavior change with::

    REPRO_REGEN_BASELINES=1 PYTHONPATH=src python -m pytest tests/test_multitree_gate.py
"""

import json
import os
import shutil

import pytest

from repro.experiments import common
from repro.validate.baseline import (
    ENV_REGEN_BASELINES,
    load_baseline,
    load_baseline_dir,
    regen_baselines,
)
from repro.validate.gate import run_gates

BASELINE_DIR = "tests/golden/baselines"


@pytest.fixture(autouse=True)
def fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


def test_multitree_gate_passes_on_clean_head():
    """The acceptance criterion: the K-tree campaign reproduces its
    committed summary and the blackout-decreasing-in-K trend holds."""
    if os.environ.get(ENV_REGEN_BASELINES):
        written = regen_baselines(BASELINE_DIR, only=["multitree_resilience"])
        assert written == [os.path.join(BASELINE_DIR, "multitree.json")]
    baselines = load_baseline_dir(BASELINE_DIR, only=["multitree_resilience"])
    report = run_gates(baselines, baseline_dir=BASELINE_DIR)
    assert report.passed, report.render_text()
    outcome = report.outcomes[0]
    assert outcome.mode == "paired"
    trend_names = {t.name for t in outcome.trends}
    assert "crash-blackout-K8-strictly-below-K1" in trend_names
    assert all(t.passed for t in outcome.trends)


def test_committed_baseline_declares_the_k_trend():
    baseline = load_baseline(os.path.join(BASELINE_DIR, "multitree.json"))
    assert baseline.experiment_id == "multitree_resilience"
    kinds = {t.kind for t in baseline.trends}
    assert kinds == {"path_order"}
    lowers = [t.lower for t in baseline.trends]
    assert all("blackout_rate" in path for path in lowers)
    # Strictness is encoded as a negative absolute margin on K8-vs-K1.
    strict = [t for t in baseline.trends if t.name.endswith("strictly-below-K1")]
    assert len(strict) == 1 and strict[0].abs_margin < 0


def test_regen_refreshes_multitree_json_in_place(tmp_path):
    """``regen_baselines`` matches baselines by experiment_id, so the
    unconventionally-named ``multitree.json`` is rewritten in place
    rather than duplicated as ``multitree_resilience.json``."""
    tiny_spec = {
        "name": "regen-tiny",
        "population": 300,
        "protocols": ["rost"],
        "tree_counts": [1, 2],
        "root_bandwidth": 4.0,
        "scenarios": [{"name": "baseline", "faults": []}],
    }
    committed = load_baseline(os.path.join(BASELINE_DIR, "multitree.json"))
    prior = {
        "schema_version": 1,
        "experiment_id": "multitree_resilience",
        "scale": 0.05,
        "seeds": [1],
        "kwargs": {"spec": tiny_spec},
        "tolerance": committed.tolerance.to_payload(),
        "trends": [],
        "metrics": {},
    }
    target = tmp_path / "multitree.json"
    target.write_text(json.dumps(prior))
    shutil.copy(
        os.path.join(BASELINE_DIR, "fig04.json"), tmp_path / "fig04.json"
    )

    written = regen_baselines(str(tmp_path), only=["multitree_resilience"])
    assert written == [str(target)]
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "fig04.json",
        "multitree.json",
    ]
    regenerated = load_baseline(str(target))
    # Operating point preserved, metric summaries refreshed.
    assert regenerated.seeds == [1]
    assert regenerated.kwargs == {"spec": tiny_spec}
    assert regenerated.metrics

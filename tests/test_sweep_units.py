"""Sweep-unit scheduler: dedup plan, exact payloads, byte-identity.

The contracts under test (see ``docs/performance.md``):

* figures declare exactly the simulation units their extraction consumes,
  and the pool's plan dedups them across figures — each distinct
  (protocol, size, seed, variant) simulation runs once per campaign;
* a :class:`ChurnRunResult` / :class:`RecoveryRunResult` round-trips
  through its JSON payload *byte-exactly* (floats bit-for-bit, int/float
  distinction preserved), which is what makes worker-produced results
  indistinguishable from locally-computed ones;
* a unit-scheduled run at any ``--jobs`` produces tables, data and merged
  obs traces byte-identical to the serial run;
* with the durable store active, each deduped unit's ledger row shows
  ``executions == 1`` after a parallel campaign, and a killed campaign
  resumes at unit granularity.
"""

import dataclasses
import json
import math
import os
import re
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import common
from repro.experiments.common import SweepSettings
from repro.experiments.pool import ExperimentJob, ExperimentPool, run_jobs
from repro.experiments.units import (
    DEFAULT_PROBE,
    ChurnUnit,
    RecoveryUnit,
    run_unit_task,
    seed_unit,
    units_for,
)
from repro.metrics.collectors import ChurnMetrics, TimeSeries
from repro.overlay.messages import MessageStats, MessageType
from repro.recovery.schemes import RecoveryScheme
from repro.simulation.churn import ChurnRunResult
from repro.simulation.streaming import RecoveryRunResult, SchemeResult

TIMING_LINE = re.compile(r" in [0-9.]+s\]")

SETTINGS = SweepSettings(scale=0.02, seed=3)


@pytest.fixture(autouse=True)
def fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


# -- the dedup plan ---------------------------------------------------------------


def test_sweep_figures_share_units():
    """Figs 4/7/8/10 declare the same sweep; fig05 is its 8000 column."""
    sweep_keys = {u.cache_key() for u in units_for("fig04", 0.02, 3)}
    for other in ("fig07", "fig08", "fig10"):
        assert {u.cache_key() for u in units_for(other, 0.02, 3)} == sweep_keys
    fig05_keys = {u.cache_key() for u in units_for("fig05", 0.02, 3)}
    assert fig05_keys < sweep_keys
    assert {u.cache_key() for u in units_for("control-messages", 0.02, 3)} == fig05_keys


def test_probe_figures_share_units():
    keys06 = {u.cache_key() for u in units_for("fig06", 0.02, 3)}
    keys09 = {u.cache_key() for u in units_for("fig09", 0.02, 3)}
    assert keys06 == keys09
    assert all(u.probe == DEFAULT_PROBE for u in units_for("fig06", 0.02, 3))


def test_full_rost_variant_dedups_against_sweep():
    """The identity ablation variant is literally the sweep's rost run."""
    sweep_keys = {u.cache_key() for u in units_for("fig04", 0.02, 3)}
    ablation = units_for("ablation-rost", 0.02, 3)
    assert sum(1 for u in ablation if u.cache_key() in sweep_keys) == 1


def test_plan_dedups_across_figures():
    jobs = [
        ExperimentJob.make(fid, scale=0.02, seed=3)
        for fid in ("fig04", "fig07", "fig05", "fig06", "fig09")
    ]
    pool = ExperimentPool(jobs=4)
    units_by_job, unique_units = pool._plan_units(jobs)
    assert all(declared is not None for declared in units_by_job)
    declared_total = sum(len(declared) for declared in units_by_job)
    # 25 sweep + 5 probe units; everything else is a duplicate view.
    assert len(unique_units) == 30
    assert declared_total > len(unique_units)
    keys = [u.cache_key() for u in unique_units]
    assert len(keys) == len(set(keys))


def test_undeclared_experiment_falls_back_to_whole_job():
    assert units_for("faults_scenario", 0.02, 3) is None


# -- exact payload round-trips -----------------------------------------------------

finite_or_special = st.floats(allow_nan=True, allow_infinity=True, width=64)
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
counts = st.integers(min_value=0, max_value=2**31)


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _churn_result(draw_floats, draw_counts, series_values) -> ChurnRunResult:
    metrics = ChurnMetrics(0.0, 100.0, mean_lifetime_s=draw_floats[0])
    metrics.disruption_events = draw_counts[0]
    metrics.disruptions_per_departed = list(draw_counts[:4])
    metrics.node_seconds = draw_floats[1]
    metrics.delay_samples_ms = list(draw_floats[2:5])
    metrics.stretch_samples = list(draw_floats[5:7])
    messages = MessageStats()
    messages.counts[MessageType.JOIN] = draw_counts[1]
    probe = TimeSeries()
    for i, value in enumerate(series_values):
        probe.append(float(i), value)
    return ChurnRunResult(
        protocol_name="rost",
        config=SETTINGS.config(2000),
        metrics=metrics,
        messages=messages,
        sessions_total=draw_counts[2],
        sessions_rejected=draw_counts[3],
        probe_disruptions=probe,
        probe_delay_ms=None,
        extras={"events_processed": draw_floats[7], "switches": draw_counts[0]},
    )


@settings(max_examples=25, deadline=None)
@given(
    draw_floats=st.lists(finite_or_special, min_size=8, max_size=8),
    draw_counts=st.lists(counts, min_size=4, max_size=4),
    series_values=st.lists(st.one_of(counts, finite), max_size=6),
)
def test_churn_result_payload_round_trips_exactly(
    draw_floats, draw_counts, series_values
):
    result = _churn_result(draw_floats, draw_counts, series_values)
    payload = result.to_payload()
    blob = json.dumps(payload, separators=(",", ":"))
    rebuilt = ChurnRunResult.from_payload(json.loads(blob))
    assert _canonical(rebuilt.to_payload()) == _canonical(payload)
    # The int/float distinction survives: a probe count of 0 must not
    # come back as 0.0 (it would leak into --json as a trailing ".0").
    rebuilt_values = rebuilt.probe_disruptions.values
    assert [type(v) for v in rebuilt_values] == [type(v) for v in series_values]


@settings(max_examples=25, deadline=None)
@given(
    ratios=st.lists(finite_or_special, max_size=6),
    tallies=st.lists(counts, min_size=5, max_size=5),
    span=finite,
)
def test_recovery_result_payload_round_trips_exactly(ratios, tallies, span):
    scheme = RecoveryScheme(
        name="cer-k3", group_size=3, use_mlc=True, striped=True, buffer_s=15.0
    )
    scheme_result = SchemeResult(scheme=scheme)
    scheme_result.ratios = list(ratios)
    scheme_result.total_starving_s = span
    scheme_result.episodes = tallies[0]
    scheme_result.gap_packets_total = tallies[1]
    scheme_result.repaired_packets_total = tallies[2]
    scheme_result.group_tree_correlation_sum = tallies[3]
    scheme_result.groups_selected = tallies[4]
    result = RecoveryRunResult(
        churn=_churn_result([1.5] * 8, [2] * 4, []),
        schemes={"cer-k3": scheme_result},
    )
    payload = result.to_payload()
    blob = json.dumps(payload, separators=(",", ":"))
    rebuilt = RecoveryRunResult.from_payload(json.loads(blob))
    assert _canonical(rebuilt.to_payload()) == _canonical(payload)
    assert dataclasses.asdict(rebuilt.schemes["cer-k3"].scheme) == dataclasses.asdict(
        scheme
    )


def test_executed_unit_payload_seeds_an_identical_cache_entry():
    """run_unit_task -> seed_unit reproduces the local cache entry exactly."""
    unit = ChurnUnit("min-depth", 2000, SETTINGS)
    blob = run_unit_task(unit)
    direct = common.churn_run("min-depth", 2000, SETTINGS)
    common.clear_caches()
    seed_unit(unit, blob)
    seeded = common.churn_run("min-depth", 2000, SETTINGS)
    assert common.cache_stats()["churn_hits"] == 1
    assert _canonical(seeded.to_payload()) == _canonical(direct.to_payload())


# -- byte-identity: unit-scheduled vs serial ---------------------------------------

BATCH_IDS = ("fig05", "control-messages", "fig13")


def _snapshot(results):
    return json.dumps(
        [
            {
                "table": r.table,
                "data": r.data,
                "artifacts": {
                    k: v for k, v in (r.artifacts or {}).items() if k != "profile"
                },
            }
            for r in results
        ],
        default=str,
        sort_keys=True,
    )


def _run_batch(jobs_n):
    common.clear_caches()
    batch = [ExperimentJob.make(fid, scale=0.02, seed=3) for fid in BATCH_IDS]
    return run_jobs(batch, parallel_jobs=jobs_n)


def test_unit_scheduled_matches_serial_including_obs_traces(monkeypatch):
    monkeypatch.setenv("REPRO_OBS_TRACE", "1")
    serial = _snapshot(_run_batch(1))
    parallel = _snapshot(_run_batch(4))
    assert parallel == serial
    # Every simulation the parallel run's figures consumed was seeded
    # from a worker payload — none re-simulated in the parent.
    stats = common.cache_stats()
    assert stats["churn_misses"] == 0
    assert stats["recovery_misses"] == 0
    assert stats["churn_hits"] > 0


def test_parallel_campaign_executes_each_unit_once(tmp_path, monkeypatch):
    store_root = tmp_path / "runstore"
    monkeypatch.setenv("REPRO_STORE_DIR", str(store_root))
    first = _snapshot(_run_batch(4))
    with sqlite3.connect(store_root / "ledger.sqlite") as conn:
        rows = conn.execute(
            "select experiment_id, executions, hits from units "
            "where experiment_id like 'sim:%'"
        ).fetchall()
    assert rows, "parallel campaign should record simulation units"
    assert all(executions == 1 for _, executions, _ in rows)
    assert all(hits == 0 for _, _, hits in rows)

    # Resume: completed units replay from the store, executions stay 1.
    monkeypatch.setenv("REPRO_STORE_RESUME", "1")
    with sqlite3.connect(store_root / "ledger.sqlite") as conn:
        conn.execute("delete from units where experiment_id not like 'sim:%'")
        conn.commit()
    resumed = _snapshot(_run_batch(4))
    assert resumed == first
    with sqlite3.connect(store_root / "ledger.sqlite") as conn:
        rows = conn.execute(
            "select executions, hits from units where experiment_id like 'sim:%'"
        ).fetchall()
    assert all(executions == 1 for executions, _ in rows)
    assert all(hits >= 1 for _, hits in rows)


# -- SIGKILL mid-sweep, resume at unit granularity ---------------------------------

_SWEEP_SCRIPT = """
import json, sys
sys.path.insert(0, "src")
from repro.experiments import common
from repro.experiments.pool import ExperimentJob, run_jobs

out_path, jobs_n = sys.argv[1], int(sys.argv[2])
batch = [
    ExperimentJob.make(fid, scale=0.02, seed=3)
    for fid in ("fig05", "control-messages", "fig13")
]
results = run_jobs(batch, parallel_jobs=jobs_n)
snap = [{"table": r.table, "data": r.data} for r in results]
with open(out_path, "w") as handle:
    json.dump(snap, handle, sort_keys=True, default=str)
"""


@pytest.mark.slow
def test_sigkill_mid_sweep_resumes_at_unit_granularity(tmp_path):
    repo = str(Path(__file__).resolve().parents[1])
    script = tmp_path / "sweep.py"
    script.write_text(_SWEEP_SCRIPT)
    env = dict(os.environ, PYTHONPATH="src")

    def run(out, extra_env):
        subprocess.run(
            [sys.executable, str(script), str(out), "4"],
            cwd=repo,
            env=dict(env, **extra_env),
            check=True,
        )

    run(tmp_path / "base.json", {})

    store_root = tmp_path / "killed.runstore"
    ledger = store_root / "ledger.sqlite"
    # REPRO_SHM=0: SIGKILL prevents the pool parent's cleanup `finally`
    # from running, so a shm session opened by this process would leak
    # its /dev/shm segments past the test (and trip the no-leak sweep in
    # test_topology_shm).  The store ledger under test is unaffected.
    proc = subprocess.Popen(
        [sys.executable, str(script), str(tmp_path / "dead.json"), "4"],
        cwd=repo,
        env=dict(env, REPRO_STORE_DIR=str(store_root), REPRO_SHM="0"),
        start_new_session=True,
    )
    try:
        deadline = time.time() + 120
        committed = 0
        while time.time() < deadline:
            if ledger.exists():
                try:
                    with sqlite3.connect(ledger) as conn:
                        committed = conn.execute(
                            "select count(*) from units "
                            "where experiment_id like 'sim:%'"
                        ).fetchone()[0]
                except sqlite3.OperationalError:
                    committed = 0
            if committed >= 1 or proc.poll() is not None:
                break
            time.sleep(0.05)
        assert committed >= 1 or proc.poll() is not None
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)

    run(
        tmp_path / "resumed.json",
        {"REPRO_STORE_DIR": str(store_root), "REPRO_STORE_RESUME": "1"},
    )
    assert (tmp_path / "resumed.json").read_bytes() == (
        tmp_path / "base.json"
    ).read_bytes()
    with sqlite3.connect(ledger) as conn:
        rows = conn.execute(
            "select executions from units where experiment_id like 'sim:%'"
        ).fetchall()
    assert rows
    assert all(executions == 1 for (executions,) in rows)

"""K-tree delivery: interior-disjointness and stripe-quality metrics."""

import pytest

from repro.multitree.driver import MultiTreeSimulation
from repro.protocols import PROTOCOLS
from tests.conftest import small_sim_config


@pytest.fixture(scope="module")
def two_tree_run():
    sim = MultiTreeSimulation(
        small_sim_config(population=80, seed=9),
        PROTOCOLS["min-depth"],
        num_trees=2,
    )
    return sim, sim.run()


def test_runs_and_reports(two_tree_run):
    sim, result = two_tree_run
    assert result.num_trees == 2
    assert len(result.per_tree) == 2
    assert result.members_measured > 0
    assert 0.0 <= result.mean_delivered_quality <= 1.0
    assert result.effective_delay_ms > 0


def test_interior_disjointness(two_tree_run):
    """A member can have children in its home tree only."""
    sim, _ = two_tree_run
    for tree_index, churn in enumerate(sim._sims):
        for node in churn.tree.attached_nodes():
            if node.is_root:
                continue
            if node.member_id % 2 != tree_index:
                assert node.out_degree_cap == 0
                assert node.children == []


def test_trees_share_workload_and_underlay(two_tree_run):
    sim, _ = two_tree_run
    assert sim._sims[0].workload is sim._sims[1].workload
    assert sim._sims[0].topology is sim._sims[1].topology


def test_home_capacity_measured_against_stripe_rate(two_tree_run):
    """A bw-2 member can serve 4 children of a half-rate stripe."""
    sim, _ = two_tree_run
    stripe_rate = sim.stripe_config.workload.stream_rate
    assert stripe_rate == pytest.approx(0.5)
    for churn in sim._sims:
        for node in churn.tree.members.values():
            if not node.is_root and node.out_degree_cap > 0:
                assert node.out_degree_cap == int(node.bandwidth / stripe_rate)


def test_blackouts_rarer_than_stripe_outages(two_tree_run):
    _, result = two_tree_run
    assert result.blackouts_per_node <= result.stripe_disruptions_per_node


def test_more_trees_reduce_blackouts():
    """The headline of multi-tree delivery: independent stripes make total
    blackouts rare even though stripe-level interruptions continue."""
    single = MultiTreeSimulation(
        small_sim_config(population=80, seed=9),
        PROTOCOLS["min-depth"],
        num_trees=1,
    ).run()
    double = MultiTreeSimulation(
        small_sim_config(population=80, seed=9),
        PROTOCOLS["min-depth"],
        num_trees=2,
    ).run()
    # with one tree, every disruption is a blackout
    assert single.blackouts_per_node == pytest.approx(
        single.stripe_disruptions_per_node
    )
    assert double.blackouts_per_node <= single.blackouts_per_node


def test_invalid_tree_count():
    with pytest.raises(ValueError):
        MultiTreeSimulation(
            small_sim_config(), PROTOCOLS["min-depth"], num_trees=0
        )


def test_rost_multitree_runs():
    sim = MultiTreeSimulation(
        small_sim_config(population=60, seed=4, measure_lifetimes=0.5),
        PROTOCOLS["rost"],
        num_trees=3,
    )
    result = sim.run()
    assert result.num_trees == 3
    for churn_result in result.per_tree:
        assert churn_result.metrics.mean_population > 0

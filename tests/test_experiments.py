"""Experiment registry and tiny-scale experiment runs.

Every registered experiment must run end-to-end at a tiny scale and
produce a well-formed table plus raw data.  These are integration tests
of the whole stack (topology -> workload -> protocols -> metrics ->
reporting).
"""

import pytest

from repro.experiments import common, get_experiment, list_experiments
from repro.experiments.registry import REGISTRY

TINY = dict(scale=0.02, seed=5)

FIGURE_IDS = [
    "fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
    "fig10", "fig11", "fig12", "fig13", "fig14",
]
ALL_IDS = [
    "ablation-recovery",
    "ablation-rost",
    "control-messages",
    "ext-multitree",
    "ext-rescue",
    "faults_campaign",
    "faults_scenario",
] + FIGURE_IDS + [
    "multitree_resilience",
    "multitree_scenario",
]


@pytest.fixture(scope="module", autouse=True)
def fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


def test_registry_complete():
    assert sorted(REGISTRY) == ALL_IDS
    for experiment in list_experiments():
        assert experiment.title
        if experiment.experiment_id in FIGURE_IDS:
            assert experiment.paper_artifact.startswith("Figure")
        else:
            assert experiment.paper_artifact == "Extension"


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        get_experiment("fig99")


def test_duplicate_registration_rejected():
    from repro.experiments.registry import register

    with pytest.raises(ValueError):
        register("fig04", "dup", "Figure 4")(lambda **kw: None)


@pytest.mark.parametrize("experiment_id", ["fig04", "fig07", "fig08", "fig10"])
def test_size_sweep_experiments(experiment_id):
    result = get_experiment(experiment_id).run(sizes=(2000, 5000), **TINY)
    assert result.experiment_id == experiment_id
    assert result.table.strip()
    assert set(result.data["series"]) == {
        "min-depth", "longest-first", "relaxed-bo", "relaxed-to", "rost",
    }
    for values in result.data["series"].values():
        assert len(values) == 2


def test_fig05_cdf_rows_monotone():
    result = get_experiment("fig05").run(population=2000, **TINY)
    for name, fractions in result.data["series"].items():
        assert all(a <= b + 1e-9 for a, b in zip(fractions, fractions[1:])), name
        assert fractions[-1] == pytest.approx(100.0)


def test_fig06_cumulative_series():
    result = get_experiment("fig06").run(population=2000, **TINY)
    for name, values in result.data["series"].items():
        assert all(a <= b for a, b in zip(values, values[1:])), name


def test_fig09_delay_series_positive():
    import math

    result = get_experiment("fig09").run(population=2000, **TINY)
    for name, values in result.data["series"].items():
        finite = [v for v in values if not math.isnan(v)]
        assert finite and all(v > 0 for v in finite), name


def test_fig11_interval_sweep():
    result = get_experiment("fig11").run(
        population=2000, intervals=(480.0, 1800.0), **TINY
    )
    series = result.data["series"]
    assert len(series["disruptions/node"]) == 2
    assert all(v >= 0 for v in series["reconnections/node"])


def test_fig12_recovery_sweep():
    result = get_experiment("fig12").run(sizes=(2000, 5000), **TINY)
    series = result.data["series"]
    assert set(series) == {"1", "2", "3", "4"}
    assert all(0 <= v <= 100 for vs in series.values() for v in vs)


def test_fig13_buffer_sweep():
    result = get_experiment("fig13").run(population=2000, **TINY)
    assert set(result.data["series"]) == {"group=1", "group=2", "group=3"}


def test_fig14_combined_comparison():
    result = get_experiment("fig14").run(population=2000, replicas=2, **TINY)
    for k, row in result.data.items():
        assert row["rost_cer"][0] >= 0
        assert row["mindepth_ss"][0] >= 0


def test_ablation_rost_runs():
    result = get_experiment("ablation-rost").run(population=2000, **TINY)
    assert set(result.data) == {
        "full-rost", "no-promotion", "no-succession", "no-bw-guard",
        "no-referees", "swaps-only",
    }
    assert all(v["disruptions"] >= 0 for v in result.data.values())


def test_ablation_recovery_runs():
    result = get_experiment("ablation-recovery").run(population=2000, **TINY)
    assert "cer-k3-b5" in result.data
    assert "ss-k3-b5" in result.data
    assert all(0 <= v["starving_pct"] <= 100 for v in result.data.values())


def test_ext_multitree_runs():
    result = get_experiment("ext-multitree").run(
        population=2000, tree_counts=(1, 2), **TINY
    )
    assert set(result.data) == {"1", "2"}
    one, two = result.data["1"], result.data["2"]
    # with one tree every disruption is a blackout; with two, blackouts
    # can only shrink
    assert two["blackouts"] <= one["blackouts"] + 1e-9
    assert 0 <= two["quality_pct"] <= 100


def test_ext_rescue_runs():
    result = get_experiment("ext-rescue").run(population=2000, **TINY)
    assert set(result.data) == {"baseline", "rescue"}
    for k in ("1", "2", "3"):
        assert result.data["rescue"][k] <= result.data["baseline"][k] + 0.05


def test_control_messages_runs():
    result = get_experiment("control-messages").run(population=2000, **TINY)
    assert set(result.data) == {
        "min-depth", "longest-first", "relaxed-bo", "relaxed-to", "rost",
    }
    # only ROST generates referee traffic (and BTP queries, when the tiny
    # tree is deep enough to have non-root parents at all)
    assert result.data["rost"]["referee_assign"] > 0
    assert result.data["min-depth"]["btp_query"] == 0
    assert result.data["min-depth"]["referee_assign"] == 0
    for row in result.data.values():
        assert row["total"] > 0


def test_shared_sweeps_are_cached():
    """fig07 after fig04 must reuse the cached churn runs."""
    common.clear_caches()
    get_experiment("fig04").run(sizes=(2000,), **TINY)
    cached_before = dict(common._churn_cache)
    get_experiment("fig07").run(sizes=(2000,), **TINY)
    # no new churn runs were needed
    assert set(common._churn_cache) == set(cached_before)

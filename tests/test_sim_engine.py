"""Simulator clock semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_clock_advances_to_event_times():
    sim = Simulator()
    seen = []
    sim.schedule_at(3.0, lambda: seen.append(sim.now))
    sim.schedule_at(7.0, lambda: seen.append(sim.now))
    sim.run_until(10.0)
    assert seen == [3.0, 7.0]
    assert sim.now == 10.0
    assert sim.events_processed == 2


def test_run_until_leaves_future_events_pending():
    sim = Simulator()
    fired = []
    sim.schedule_at(5.0, lambda: fired.append("early"))
    sim.schedule_at(15.0, lambda: fired.append("late"))
    sim.run_until(10.0)
    assert fired == ["early"]
    assert sim.pending_events == 1
    sim.run_until(20.0)
    assert fired == ["early", "late"]


def test_boundary_event_fires():
    sim = Simulator()
    fired = []
    sim.schedule_at(10.0, lambda: fired.append(1))
    sim.run_until(10.0)
    assert fired == [1]


def test_schedule_in_relative_delay():
    sim = Simulator()
    times = []
    sim.schedule_in(2.0, lambda: times.append(sim.now))
    sim.run_until(5.0)
    assert times == [2.0]


def test_events_scheduled_during_run_fire_in_order():
    sim = Simulator()
    log = []

    def first():
        log.append(("first", sim.now))
        sim.schedule_in(1.0, lambda: log.append(("chained", sim.now)))

    sim.schedule_at(1.0, first)
    sim.run_until(10.0)
    assert log == [("first", 1.0), ("chained", 2.0)]


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(4.0, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule_in(-1.0, lambda: None)


def test_run_until_backwards_rejected():
    sim = Simulator()
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.run_until(4.0)


def test_reentrant_run_rejected():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run_until(100.0)
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule_at(1.0, reenter)
    sim.run_until(10.0)
    assert len(errors) == 1


def test_run_drains_queue():
    sim = Simulator()
    fired = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule_at(t, lambda t=t: fired.append(t))
    sim.run()
    assert fired == [1.0, 2.0, 3.0]
    assert sim.pending_events == 0


def test_run_max_events():
    sim = Simulator()
    fired = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule_at(t, lambda t=t: fired.append(t))
    sim.run(max_events=2)
    assert fired == [1.0, 2.0]
    assert sim.pending_events == 1


def test_reset_rewinds_everything():
    sim = Simulator()
    sim.schedule_at(1.0, lambda: None)
    sim.run_until(0.5)
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending_events == 0
    assert sim.events_processed == 0

"""Centralized relaxed bandwidth-/time-ordered protocols."""

import pytest

from repro.protocols.relaxed_bo import RelaxedBandwidthOrderedProtocol
from repro.protocols.relaxed_to import RelaxedTimeOrderedProtocol
from tests.protocol_harness import Harness


@pytest.fixture()
def harness(tiny_topology, tiny_oracle):
    return Harness(tiny_topology, tiny_oracle, root_cap=2)


class TestRelaxedBandwidthOrdered:
    def test_fresh_join_uses_global_spare(self, harness):
        proto = RelaxedBandwidthOrderedProtocol(harness.ctx)
        node = harness.new_member(bandwidth=1.0)
        assert proto.place(node, rejoin=False)
        assert node.parent is harness.tree.root

    def test_high_bw_joiner_evicts_smaller(self, harness):
        proto = RelaxedBandwidthOrderedProtocol(harness.ctx)
        weak_a = harness.new_member(bandwidth=1.0)
        weak_b = harness.new_member(bandwidth=1.2)
        assert proto.place(weak_a, rejoin=False)
        assert proto.place(weak_b, rejoin=False)
        assert weak_a.layer == weak_b.layer == 1  # root full now
        strong = harness.new_member(bandwidth=9.0)
        assert proto.place(strong, rejoin=False)
        # the stronger member took a layer-1 slot; a weaker one was displaced
        assert strong.layer == 1
        displaced = [n for n in (weak_a, weak_b) if not n.attached]
        assert len(displaced) == 1
        assert displaced[0].optimization_reconnections == 1
        # the displaced member re-places itself after the rejoin delay
        harness.sim.run_until(60.0)
        assert displaced[0].attached

    def test_eviction_adopts_children(self, harness):
        proto = RelaxedBandwidthOrderedProtocol(harness.ctx)
        weak = harness.new_member(bandwidth=2.0)
        filler = harness.new_member(bandwidth=8.0)
        assert proto.place(weak, rejoin=False)
        assert proto.place(filler, rejoin=False)
        child = harness.new_member(bandwidth=0.5, cap=0)
        assert proto.place(child, rejoin=False)
        assert child.parent is weak
        strong = harness.new_member(bandwidth=9.0)
        assert proto.place(strong, rejoin=False)
        assert strong.layer == 1
        # weak was evicted; its child is adopted by strong immediately
        assert child.parent is strong
        assert child.attached

    def test_no_eviction_when_free_slot_higher(self, harness):
        proto = RelaxedBandwidthOrderedProtocol(harness.ctx)
        weak = harness.new_member(bandwidth=1.0)
        assert proto.place(weak, rejoin=False)
        strong = harness.new_member(bandwidth=9.0)
        assert proto.place(strong, rejoin=False)
        # root still had a spare slot at the same layer: no eviction
        assert weak.attached
        assert strong.parent is harness.tree.root

    def test_overhead_callback_routed(self, harness):
        counted = []
        proto = RelaxedBandwidthOrderedProtocol(harness.ctx)
        proto.overhead_callback = counted.append
        a = harness.new_member(bandwidth=1.0)
        b = harness.new_member(bandwidth=1.5)
        strong = harness.new_member(bandwidth=9.0)
        proto.place(a, rejoin=False)
        proto.place(b, rejoin=False)
        proto.place(strong, rejoin=False)
        assert sum(counted) >= 1


class TestRelaxedTimeOrdered:
    def test_fresh_members_never_evict(self, harness):
        proto = RelaxedTimeOrderedProtocol(harness.ctx)
        harness.sim.run_until(50.0)
        a = harness.new_member(join_time=50.0)
        b = harness.new_member(join_time=50.0)
        assert proto.place(a, rejoin=False)
        assert proto.place(b, rejoin=False)
        harness.sim.run_until(100.0)
        fresh = harness.new_member(join_time=100.0)
        assert proto.place(fresh, rejoin=False)
        assert a.attached and b.attached
        assert fresh.layer == 2

    def test_older_rejoiner_evicts_youngest(self, harness):
        proto = RelaxedTimeOrderedProtocol(harness.ctx)
        young_a = harness.new_member(join_time=80.0, bandwidth=2.0)
        young_b = harness.new_member(join_time=90.0, bandwidth=2.0)
        harness.sim.run_until(100.0)
        assert proto.place(young_a, rejoin=False)
        assert proto.place(young_b, rejoin=False)
        assert young_a.layer == young_b.layer == 1
        elder = harness.new_member(join_time=0.0, bandwidth=2.0)
        assert proto.place(elder, rejoin=True)
        assert elder.layer == 1
        # the *youngest* layer-1 member is the one displaced
        assert not young_b.attached
        assert young_a.attached

    def test_cascade_settles_via_clock(self, harness):
        proto = RelaxedTimeOrderedProtocol(harness.ctx)
        members = []
        harness.sim.run_until(100.0)
        for i, jt in enumerate([60.0, 70.0, 80.0, 90.0]):
            node = harness.new_member(join_time=jt, bandwidth=2.0)
            members.append(node)
            assert proto.place(node, rejoin=False)
        elder = harness.new_member(join_time=0.0, bandwidth=2.0)
        assert proto.place(elder, rejoin=True)
        harness.sim.run_until(200.0)
        # everybody ends up attached somewhere
        assert all(m.attached for m in members)
        assert elder.attached
        harness.tree.check_invariants()

"""Failure injection and adversarial workloads.

These scenarios stress the drivers well outside the paper's nominal
operating point: mass simultaneous failures, capacity famine, flash
joins at a single instant.  The invariants must hold throughout and the
overlay must re-converge.

The injected-failure scenarios (mass failure, flash join, decapitation)
drive the engine through :mod:`repro.faults` primitives; the remaining
ones hand-roll workloads because their stress is the *workload shape*
itself (famine, wedges, storms), not an injected event.
"""

import dataclasses

import pytest

from repro.faults import FaultInjector, FaultSchedule, FlashCrowd, NodeCrash
from repro.metrics.collectors import ResilienceMetrics
from repro.protocols import PROTOCOLS
from repro.simulation.churn import ChurnSimulation
from repro.workload.generator import ChurnWorkload
from repro.workload.session import RootSpec, Session
from tests.conftest import small_sim_config

pytestmark = pytest.mark.chaos


def build_workload(config, sessions, horizon):
    return ChurnWorkload(
        config=config.workload,
        root=RootSpec(bandwidth=config.workload.root_bandwidth, underlay_node=6),
        sessions=sorted(sessions, key=lambda s: s.arrival_s),
        horizon_s=horizon,
    )


def make_sessions(count, arrival, lifetime, bandwidth, start_id=1, node=6):
    return [
        Session(
            member_id=start_id + i,
            arrival_s=arrival,
            lifetime_s=lifetime,
            bandwidth=bandwidth,
            underlay_node=node + i % 48,
        )
        for i in range(count)
    ]


@pytest.mark.parametrize("protocol_name", ["min-depth", "rost", "relaxed-bo"])
def test_mass_simultaneous_failure(protocol_name):
    """Half the population is killed at the same instant."""
    cfg = small_sim_config(population=100, seed=3)
    members = make_sessions(120, arrival=0.0, lifetime=5000.0, bandwidth=3.0)
    workload = build_workload(cfg, members, horizon=3000.0)
    sim = ChurnSimulation(
        cfg, PROTOCOLS[protocol_name], workload=workload, check_invariants=True
    )
    injector = FaultInjector(
        FaultSchedule(seed=3, faults=(NodeCrash(at_s=1000.0, count=60),))
    ).bind(sim)
    sim.run()
    assert injector.log[0][1] == "node-crash"
    assert len(injector.log[0][2]["killed"]) == 60
    # every surviving member is attached again by the end
    assert sim.tree.num_attached == 61  # 60 survivors + root
    sim.tree.check_invariants()


def test_capacity_famine_rejects_gracefully():
    """Only the root can forward; everyone else is a free-rider."""
    cfg = small_sim_config(population=150, seed=4)
    riders = make_sessions(150, arrival=10.0, lifetime=4000.0, bandwidth=0.5)
    workload = build_workload(cfg, riders, horizon=3000.0)
    sim = ChurnSimulation(
        cfg, PROTOCOLS["min-depth"], workload=workload, check_invariants=True
    )
    result = sim.run()
    # the root's 100 slots fill; the other 50 keep retrying, never attach
    assert sim.tree.num_attached == 101
    assert result.metrics.join_retries > 0


def test_flash_join_single_instant():
    """Hundreds of members join in the same simulated second."""
    cfg = small_sim_config(population=200, seed=5)
    stable = make_sessions(5, arrival=0.0, lifetime=4000.0, bandwidth=2.0)
    # a short horizon measures right after the surge, before the burst's
    # heavy-tailed (median ~245 s) lifetimes drain the crowd away again
    horizon = 300.0
    workload = build_workload(cfg, stable, horizon=horizon)
    sim = ChurnSimulation(
        cfg, PROTOCOLS["rost"], workload=workload, check_invariants=True
    )
    injector = FaultInjector(
        FaultSchedule(
            seed=5,
            faults=(FlashCrowd(at_s=1.0, size=300, spread_s=0.0, bandwidth=2.0),),
        )
    ).bind(sim)
    sim.run()
    assert injector.log[0][2] == {"arrivals": 300}
    # nobody is capacity-rejected (everyone can forward), so attachment is
    # session arithmetic: the stable members plus the burst members whose
    # distribution-drawn lifetimes outlast the horizon
    burst = [s for mid, s in injector._sessions.items() if mid > 5]
    alive = sum(1 for s in burst if s.departure_s > horizon)
    assert sim.tree.num_attached == 1 + 5 + alive
    assert sim.tree.num_attached > 100  # the crowd genuinely joined
    sim.tree.check_invariants()


def test_repeated_decapitation():
    """The members directly under the root die over and over."""
    cfg = small_sim_config(population=100, seed=6)
    # a narrow-ish root (20 slots) forces a deep tree, so the dying waves
    # have descendants to disrupt, while keeping enough headroom that the
    # forwarding-capable members can always re-attach (see
    # test_capacity_wedge below for the degenerate case)
    cfg = dataclasses.replace(
        cfg, workload=dataclasses.replace(cfg.workload, root_bandwidth=20.0)
    )
    # long-lived members that can each forward one stream: capacity never
    # collapses, so the waves always have descendants to disrupt
    horizon = 2000.0
    sessions = make_sessions(80, arrival=5.0, lifetime=6000.0, bandwidth=1.2)
    workload = build_workload(cfg, sessions, horizon=horizon)
    sim = ChurnSimulation(
        cfg, PROTOCOLS["rost"], workload=workload, check_invariants=True
    )
    waves = tuple(
        NodeCrash(at_s=100.0 + 200.0 * wave, selector="root-children", count=5)
        for wave in range(8)
    )
    resilience = ResilienceMetrics(0.0, horizon)
    injector = FaultInjector(FaultSchedule(seed=6, faults=waves)).bind(
        sim, resilience=resilience
    )
    sim.run()
    resilience.finish(horizon)
    sim.tree.check_invariants()
    assert len(injector.log) == 8  # every wave fired
    assert sum(len(d["killed"]) for _, _, d in injector.log) == 40
    assert resilience.disruption_events["fault:node-crash"] > 0
    # the decapitated subtrees re-attached and their repairs were timed
    assert resilience.repair_times.get("fault:node-crash")


def test_capacity_wedge_is_survived_not_solved():
    """A documented liveness limitation of the protocol family.

    If the root is tiny and zero-degree members capture all of its slots
    at the wrong moment, total spare capacity drops to zero and everyone
    else retries forever: no ROST mechanism can displace a childless
    member (switches are child-initiated).  The simulation must survive
    the famine — retrying indefinitely, keeping invariants — even though
    the overlay cannot recover without an eviction mechanism the paper's
    protocols do not have.
    """
    cfg = small_sim_config(population=100, seed=6)
    cfg = dataclasses.replace(
        cfg, workload=dataclasses.replace(cfg.workload, root_bandwidth=4.0)
    )
    sessions = []
    next_id = 1
    for wave in range(8):
        for i in range(10):
            sessions.append(
                Session(
                    member_id=next_id,
                    arrival_s=1.0 + 200.0 * wave,
                    lifetime_s=250.0,
                    bandwidth=10.0,
                    underlay_node=6 + next_id % 48,
                )
            )
            next_id += 1
    sessions += make_sessions(
        80, arrival=5.0, lifetime=6000.0, bandwidth=0.5, start_id=5000
    )
    workload = build_workload(cfg, sessions, horizon=2000.0)
    sim = ChurnSimulation(
        cfg, PROTOCOLS["rost"], workload=workload, check_invariants=True
    )
    result = sim.run()
    sim.tree.check_invariants()
    # the system survives; whether it wedges depends on who wins the race
    # for the 4 root slots, and with this seed the free-riders do
    assert sim.tree.num_attached < 20
    assert result.metrics.join_retries > 0


def test_graceful_mass_exit_zero_disruptions():
    cfg = small_sim_config(population=100, seed=7)
    members = make_sessions(120, arrival=0.0, lifetime=1000.0, bandwidth=2.0)
    workload = build_workload(cfg, members, horizon=2500.0)
    sim = ChurnSimulation(
        cfg,
        PROTOCOLS["min-depth"],
        workload=workload,
        graceful_departure_fraction=1.0,
        check_invariants=True,
    )
    result = sim.run()
    assert result.metrics.disruption_events == 0
    assert sim.tree.num_attached == 1  # everyone left; only the root remains


def test_churn_storm_many_short_sessions():
    """Sessions far shorter than the recovery window."""
    cfg = small_sim_config(population=100, seed=8)
    storm = []
    for i in range(400):
        storm.append(
            Session(
                member_id=i + 1,
                arrival_s=1.0 + i * 2.0,
                lifetime_s=8.0,  # dies before any rejoin completes
                bandwidth=2.0,
                underlay_node=6 + i % 48,
            )
        )
    workload = build_workload(cfg, storm, horizon=1200.0)
    sim = ChurnSimulation(
        cfg, PROTOCOLS["rost"], workload=workload, check_invariants=True
    )
    sim.run()
    sim.tree.check_invariants()
    assert sim.tree.num_attached == 1

"""The metrics registry must reconcile *exactly* with the legacy
collectors in :mod:`repro.metrics` — same runs, two independent counting
paths (the registry hooks observers; the collectors live inside the
simulation), so any drift is a real accounting bug in one of them.
"""

import pytest

from repro.experiments import common
from repro.experiments.pool import ExperimentJob, execute_job


@pytest.fixture(autouse=True)
def metrics_enabled(monkeypatch):
    common.clear_caches()
    monkeypatch.setenv("REPRO_OBS_METRICS", "1")
    yield
    common.clear_caches()


def _churn_run_for(meta):
    """Find the cached ChurnRunResult this metrics unit was captured from."""
    matches = [
        run
        for key, run in common._churn_cache.items()
        if key[1] == meta["protocol"] and key[2] == meta["population"]
    ]
    assert len(matches) == 1, f"ambiguous cache match for {meta}"
    return matches[0]


@pytest.mark.parametrize("experiment_id", ["fig04", "fig10"])
def test_registry_reconciles_with_legacy_collectors(experiment_id):
    result = execute_job(
        ExperimentJob.make(experiment_id, scale=0.02, seed=3, sizes=(2000, 5000))
    )

    units = result.artifacts.get("metrics", [])
    assert units, "metrics channel enabled but no units captured"
    # One unit per executed churn run, nothing double- or under-counted.
    assert len(units) == len(common._churn_cache)

    for unit in units:
        meta = unit["meta"]
        assert meta["kind"] == "churn"
        run = _churn_run_for(meta)
        counters = unit["counters"]

        # Window-gated overlay accounting vs repro.metrics.ChurnMetrics.
        assert (
            counters.get("overlay.disruption_events", 0)
            == run.metrics.disruption_events
        )
        assert (
            counters.get("overlay.optimization_reconnections", 0)
            == run.metrics.optimization_reconnections
        )
        assert (
            counters.get("overlay.failure_reconnections", 0)
            == run.metrics.failure_reconnections
        )

        # Control-plane traffic vs MessageStats.
        assert counters.get("overlay.control_messages", 0) == run.messages.total

        # Kernel accounting vs the simulation's own extras.
        assert counters["sim.events_processed"] == run.extras["events_processed"]
        assert unit["gauges"]["overlay.final_attached"] == run.extras["final_attached"]

        # ROST-specific protocol counters (only rost exposes these).
        if "switches" in run.extras:
            assert counters.get("rost.switches", 0) == run.extras["switches"]
            assert counters.get("rost.promotions", 0) == run.extras["promotions"]
            assert (
                counters.get("rost.lock_failures", 0) == run.extras["lock_failures"]
            )
        else:
            assert "rost.switches" not in counters


def test_registry_absent_when_metrics_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_OBS_METRICS", raising=False)
    common.clear_caches()
    result = execute_job(
        ExperimentJob.make("fig04", scale=0.02, seed=3, sizes=(2000,))
    )
    assert result.artifacts == {}

"""The two-tier topology/oracle cache: fidelity, LRU behavior, disk tier."""

import os

import numpy as np
import pytest

from repro.config import TopologyConfig
from repro.topology.cache import (
    ENV_CACHE_DIR,
    TopologyCache,
    topology_cache_key,
)
from repro.topology.routing import DelayOracle
from repro.topology.transit_stub import generate_transit_stub

SMALL = TopologyConfig(
    transit_domains=2,
    transit_nodes_per_domain=3,
    stub_domains_per_transit=2,
    stub_nodes_per_domain=5,
    seed=9,
)


def _assert_identical(topo_a, oracle_a, topo_b, oracle_b):
    assert topo_a.num_nodes == topo_b.num_nodes
    assert topo_a.transit_nodes == topo_b.transit_nodes
    assert len(topo_a.stub_domains) == len(topo_b.stub_domains)
    for da, db in zip(topo_a.stub_domains, topo_b.stub_domains):
        assert da == db
    assert np.array_equal(topo_a.node_domain, topo_b.node_domain)
    # adjacency (including neighbor order) must round-trip exactly
    for node in range(topo_a.num_nodes):
        assert list(topo_a.graph.neighbors(node)) == list(topo_b.graph.neighbors(node))
    rng = np.random.default_rng(1)
    pairs = rng.integers(0, topo_a.num_nodes, size=(200, 2))
    for u, v in pairs:
        assert oracle_a.delay_ms(int(u), int(v)) == oracle_b.delay_ms(int(u), int(v))


def test_key_is_content_addressed():
    assert topology_cache_key(SMALL) == topology_cache_key(SMALL)
    other = TopologyConfig(
        transit_domains=2,
        transit_nodes_per_domain=3,
        stub_domains_per_transit=2,
        stub_nodes_per_domain=5,
        seed=10,
    )
    assert topology_cache_key(SMALL) != topology_cache_key(other)


def test_memory_tier_returns_same_objects():
    cache = TopologyCache(memory_slots=2, disk_dir=None)
    topo1, oracle1 = cache.get(SMALL)
    topo2, oracle2 = cache.get(SMALL)
    assert topo1 is topo2 and oracle1 is oracle2
    assert cache.memory_hits == 1 and cache.misses == 1


def test_memory_lru_evicts_oldest():
    cache = TopologyCache(memory_slots=1, disk_dir=None)
    first = cache.get(SMALL)
    other = TopologyConfig(
        transit_domains=2,
        transit_nodes_per_domain=3,
        stub_domains_per_transit=2,
        stub_nodes_per_domain=5,
        seed=10,
    )
    cache.get(other)
    again = cache.get(SMALL)  # evicted, regenerated
    assert again[0] is not first[0]
    assert cache.misses == 3


def test_disk_tier_roundtrip_is_bit_identical(tmp_path):
    writer = TopologyCache(memory_slots=2, disk_dir=str(tmp_path))
    topo_fresh, oracle_fresh = writer.get(SMALL)
    entries = list(tmp_path.glob("topology-*.npz"))
    assert len(entries) == 1

    reader = TopologyCache(memory_slots=2, disk_dir=str(tmp_path))
    topo_disk, oracle_disk = reader.get(SMALL)
    assert reader.disk_hits == 1 and reader.misses == 0
    assert topo_disk is not topo_fresh
    _assert_identical(topo_fresh, oracle_fresh, topo_disk, oracle_disk)


def test_disk_entry_matches_fresh_generation(tmp_path):
    cache = TopologyCache(memory_slots=1, disk_dir=str(tmp_path))
    topo_cached, oracle_cached = cache.get(SMALL)
    topo_fresh = generate_transit_stub(SMALL)
    oracle_fresh = DelayOracle(topo_fresh)
    _assert_identical(topo_fresh, oracle_fresh, topo_cached, oracle_cached)


def test_corrupt_disk_entry_is_regenerated(tmp_path):
    cache = TopologyCache(memory_slots=1, disk_dir=str(tmp_path))
    cache.get(SMALL)
    (entry,) = tmp_path.glob("topology-*.npz")
    entry.write_bytes(b"not an npz file")

    fresh = TopologyCache(memory_slots=1, disk_dir=str(tmp_path))
    topo, oracle = fresh.get(SMALL)
    assert fresh.misses == 1
    topo_ref = generate_transit_stub(SMALL)
    _assert_identical(topo_ref, DelayOracle(topo_ref), topo, oracle)
    # the corrupt entry was replaced by a valid one
    assert list(tmp_path.glob("topology-*.npz"))


def test_env_var_enables_disk_tier(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path))
    cache = TopologyCache(memory_slots=1)
    assert cache.disk_dir == str(tmp_path)
    cache.get(SMALL)
    assert list(tmp_path.glob("topology-*.npz"))
    monkeypatch.delenv(ENV_CACHE_DIR)
    assert cache.disk_dir is None


def test_readonly_cache_dir_is_tolerated(tmp_path):
    target = tmp_path / "ro"
    target.mkdir()
    os.chmod(target, 0o500)
    try:
        cache = TopologyCache(memory_slots=1, disk_dir=str(target))
        topo, oracle = cache.get(SMALL)  # must not raise
        assert topo.num_nodes == SMALL.total_nodes
    finally:
        os.chmod(target, 0o700)


def test_shared_topology_uses_default_cache():
    from repro.experiments import common

    common.clear_caches()
    config = common.SweepSettings(scale=0.02, seed=3).config(2000)
    pair1 = common.shared_topology(config)
    pair2 = common.shared_topology(config)
    assert pair1[0] is pair2[0]
    common.clear_caches()


def test_truncated_disk_entry_falls_back_to_regeneration(tmp_path):
    """A half-written (truncated) .npz is a miss, not a crash."""
    cache = TopologyCache(memory_slots=1, disk_dir=str(tmp_path))
    cache.get(SMALL)
    (entry,) = tmp_path.glob("topology-*.npz")
    payload = entry.read_bytes()
    entry.write_bytes(payload[: len(payload) // 2])

    fresh = TopologyCache(memory_slots=1, disk_dir=str(tmp_path))
    topo, oracle = fresh.get(SMALL)
    assert fresh.misses == 1 and fresh.disk_hits == 0
    topo_ref = generate_transit_stub(SMALL)
    _assert_identical(topo_ref, DelayOracle(topo_ref), topo, oracle)


def test_empty_disk_entry_falls_back_to_regeneration(tmp_path):
    cache = TopologyCache(memory_slots=1, disk_dir=str(tmp_path))
    cache.get(SMALL)
    (entry,) = tmp_path.glob("topology-*.npz")
    entry.write_bytes(b"")

    fresh = TopologyCache(memory_slots=1, disk_dir=str(tmp_path))
    topo, _ = fresh.get(SMALL)
    assert fresh.misses == 1
    assert topo.num_nodes == SMALL.total_nodes


def test_corrupt_disk_entry_is_evicted_once(tmp_path):
    """Load failure evicts the bad file; the regenerated entry then hits."""
    cache = TopologyCache(memory_slots=1, disk_dir=str(tmp_path))
    cache.get(SMALL)
    (entry,) = tmp_path.glob("topology-*.npz")
    good = entry.read_bytes()
    entry.write_bytes(good[: len(good) // 3])

    fresh = TopologyCache(memory_slots=1, disk_dir=str(tmp_path))
    fresh.get(SMALL)
    assert fresh.misses == 1
    # the eviction replaced the truncated file with a valid entry...
    (entry,) = tmp_path.glob("topology-*.npz")
    assert len(entry.read_bytes()) == len(good)
    # ...which a third process-equivalent loads as a plain disk hit
    third = TopologyCache(memory_slots=1, disk_dir=str(tmp_path))
    third.get(SMALL)
    assert third.disk_hits == 1 and third.misses == 0


def test_truncated_entry_missing_oracle_arrays_is_evicted(tmp_path):
    """An .npz that parses but lacks the oracle matrices is also a miss."""
    import numpy as _np

    cache = TopologyCache(memory_slots=1, disk_dir=str(tmp_path))
    cache.get(SMALL)
    (entry,) = tmp_path.glob("topology-*.npz")
    with _np.load(entry) as data:
        arrays = {k: data[k] for k in data.files if not k.startswith("oracle_")}
    with open(entry, "wb") as handle:
        _np.savez(handle, **arrays)

    fresh = TopologyCache(memory_slots=1, disk_dir=str(tmp_path))
    topo, oracle = fresh.get(SMALL)
    assert fresh.misses == 1
    topo_ref = generate_transit_stub(SMALL)
    _assert_identical(topo_ref, DelayOracle(topo_ref), topo, oracle)

"""Cross-validation against networkx and scipy.

Independent implementations of the same math: our Dijkstra/hierarchical
oracle against networkx shortest paths, and our inverse-CDF samplers
against their own CDFs via Kolmogorov-Smirnov.
"""

import networkx as nx
import numpy as np
import pytest
from scipy import stats

from repro.config import TopologyConfig
from repro.topology.graph import Graph
from repro.topology.routing import DelayOracle
from repro.topology.transit_stub import generate_transit_stub
from repro.workload.distributions import BoundedPareto, LogNormalLifetime


def to_networkx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_nodes))
    for u in range(graph.num_nodes):
        for v, w in graph.neighbors(u):
            if u < v:
                # keep the lighter parallel edge, as Dijkstra would
                if g.has_edge(u, v):
                    g[u][v]["weight"] = min(g[u][v]["weight"], w)
                else:
                    g.add_edge(u, v, weight=w)
    return g


def test_dijkstra_matches_networkx_on_random_graphs():
    rng = np.random.default_rng(7)
    for trial in range(5):
        n = int(rng.integers(10, 40))
        graph = Graph(n)
        for i in range(1, n):
            graph.add_edge(i, int(rng.integers(0, i)), float(rng.uniform(1, 20)))
        for _ in range(2 * n):
            a, b = rng.integers(0, n, size=2)
            if a != b:
                graph.add_edge(int(a), int(b), float(rng.uniform(1, 20)))
        nxg = to_networkx(graph)
        source = int(rng.integers(0, n))
        ours = graph.shortest_paths_from(source)
        theirs = nx.single_source_dijkstra_path_length(nxg, source, weight="weight")
        for target in range(n):
            assert ours[target] == pytest.approx(theirs[target])


def test_delay_oracle_matches_networkx_on_transit_stub():
    cfg = TopologyConfig(
        transit_domains=2,
        transit_nodes_per_domain=3,
        stub_domains_per_transit=2,
        stub_nodes_per_domain=4,
        seed=23,
    )
    topo = generate_transit_stub(cfg)
    oracle = DelayOracle(topo)
    nxg = to_networkx(topo.graph)
    rng = np.random.default_rng(0)
    for _ in range(150):
        a, b = rng.integers(0, topo.num_nodes, size=2)
        expected = nx.shortest_path_length(
            nxg, int(a), int(b), weight="weight"
        )
        assert oracle.delay_ms(int(a), int(b)) == pytest.approx(expected)


def test_bounded_pareto_sampler_ks():
    dist = BoundedPareto(1.2, 0.5, 100.0)
    rng = np.random.default_rng(5)
    draws = dist.sample(rng, size=20_000)
    statistic, pvalue = stats.kstest(draws, lambda x: np.asarray(dist.cdf(x)))
    assert pvalue > 0.01, (statistic, pvalue)


def test_lognormal_sampler_ks_against_scipy():
    dist = LogNormalLifetime(5.5, 2.0)  # uncapped
    rng = np.random.default_rng(5)
    draws = dist.sample(rng, size=20_000)
    scipy_dist = stats.lognorm(s=2.0, scale=np.exp(5.5))
    statistic, pvalue = stats.kstest(draws, scipy_dist.cdf)
    assert pvalue > 0.01, (statistic, pvalue)


def test_length_biased_lognormal_ks_against_scipy():
    dist = LogNormalLifetime(5.5, 2.0)
    rng = np.random.default_rng(6)
    draws = dist.sample_length_biased(rng, size=20_000)
    scipy_dist = stats.lognorm(s=2.0, scale=np.exp(5.5 + 4.0))
    statistic, pvalue = stats.kstest(draws, scipy_dist.cdf)
    assert pvalue > 0.01, (statistic, pvalue)


def test_pareto_analytic_mean_against_numeric_integration():
    from scipy import integrate

    dist = BoundedPareto(1.2, 0.5, 100.0)
    # E[X] = integral of (1 - F(x)) dx over the support, plus the lower bound
    tail = integrate.quad(lambda x: 1.0 - float(dist.cdf(x)), 0.5, 100.0)[0]
    assert dist.mean() == pytest.approx(0.5 + tail, rel=1e-6)

"""Checkpointed campaigns: ``--store`` / ``--resume`` end-to-end.

The contract under test: a run interrupted at any point and restarted
with ``--resume`` produces ``--out``/``--json`` files *byte-identical*
to an uninterrupted run, at any ``--jobs`` value, and the completed
units are verifiably replayed (ledger ``executions`` stays 1, ``hits``
increments) rather than re-executed.
"""

import json
import os
import shutil
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import common
from repro.experiments.runner import main
from repro.store import RunStore

SPEC = {
    "name": "resume-small",
    "population": 400,
    "warmup_lifetimes": 0.25,
    "measure_lifetimes": 0.5,
    "protocols": ["min-depth"],
    "seeds": [1],
    "group_size": 2,
    "root_bandwidth": 6.0,
    "scenarios": [
        {"name": "baseline", "faults": []},
        {
            "name": "outage",
            "faults": [
                {"kind": "stub-domain-outage", "domains": 2, "at_frac": 0.6}
            ],
        },
    ],
}
SCALE = "0.1"


@pytest.fixture(autouse=True)
def fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


def _campaign_args(spec_path, out, json_path, *extra):
    return [
        "faults_campaign",
        str(spec_path),
        "--scale",
        SCALE,
        "--jobs",
        "1",
        "--out",
        str(out),
        "--json",
        str(json_path),
        *extra,
    ]


@pytest.fixture(scope="module")
def seeded_campaign(tmp_path_factory):
    """Baseline output bytes plus a fully-populated store to clone from."""
    base = tmp_path_factory.mktemp("campaign")
    spec_path = base / "spec.json"
    spec_path.write_text(json.dumps(SPEC))

    common.clear_caches()
    assert main(_campaign_args(spec_path, base / "base.txt", base / "base.json")) == 0

    store_root = base / "full.runstore"
    common.clear_caches()
    code = main(
        _campaign_args(
            spec_path,
            base / "stored.txt",
            base / "stored.json",
            "--store",
            str(store_root),
        )
    )
    assert code == 0
    # A store-recording run changes nothing observable.
    assert (base / "stored.txt").read_bytes() == (base / "base.txt").read_bytes()
    assert (base / "stored.json").read_bytes() == (base / "base.json").read_bytes()
    return {
        "spec_path": spec_path,
        "out": (base / "base.txt").read_bytes(),
        "json": (base / "base.json").read_bytes(),
        "store": store_root,
    }


def _interrupt(store_root: Path) -> str:
    """Simulate a mid-run crash: forget one completed unit.

    Equivalent to a kill landing after the first per-unit transaction
    committed — the remaining rows are exactly what a restarted process
    finds.  Returns the forgotten unit's key.
    """
    conn = sqlite3.connect(str(store_root / "ledger.sqlite"))
    victim = conn.execute(
        "SELECT unit_key FROM units ORDER BY unit_key LIMIT 1"
    ).fetchone()[0]
    with conn:
        conn.execute("DELETE FROM units WHERE unit_key = ?", (victim,))
    conn.close()
    return victim


@pytest.mark.parametrize("jobs", [1, 4])
def test_resume_is_byte_identical_and_skips_completed_units(
    seeded_campaign, tmp_path, jobs
):
    store_root = tmp_path / "interrupted.runstore"
    shutil.copytree(seeded_campaign["store"], store_root)
    victim = _interrupt(store_root)

    args = _campaign_args(
        seeded_campaign["spec_path"],
        tmp_path / "resumed.txt",
        tmp_path / "resumed.json",
        "--store",
        str(store_root),
        "--resume",
    )
    args[args.index("--jobs") + 1] = str(jobs)
    assert main(args) == 0

    assert (tmp_path / "resumed.txt").read_bytes() == seeded_campaign["out"]
    assert (tmp_path / "resumed.json").read_bytes() == seeded_campaign["json"]

    store = RunStore(str(store_root))
    rows = store.ledger.units()
    assert len(rows) == 2  # the forgotten unit was re-executed and re-recorded
    for row in rows:
        assert row["executions"] == 1  # completed units never re-ran
        if row["unit_key"] == victim:
            assert row["hits"] == 0  # fresh execution, not a replay
        else:
            assert row["hits"] == 1  # replayed from the store
    run = store.ledger.runs()[-1]
    assert run["units_total"] == 2
    assert run["units_replayed"] == 1


def test_full_store_resume_replays_everything(seeded_campaign, tmp_path):
    """Resuming a *finished* run executes nothing and is still identical."""
    store_root = tmp_path / "finished.runstore"
    shutil.copytree(seeded_campaign["store"], store_root)

    args = _campaign_args(
        seeded_campaign["spec_path"],
        tmp_path / "resumed.txt",
        tmp_path / "resumed.json",
        "--store",
        str(store_root),
        "--resume",
    )
    assert main(args) == 0
    assert (tmp_path / "resumed.txt").read_bytes() == seeded_campaign["out"]
    assert (tmp_path / "resumed.json").read_bytes() == seeded_campaign["json"]

    store = RunStore(str(store_root))
    assert all(row["executions"] == 1 for row in store.ledger.units())
    run = store.ledger.runs()[-1]
    assert run["units_replayed"] == run["units_total"] == 2


def test_resume_without_store_is_a_usage_error(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "fig04", "--scale", "0.02", "--resume"])
    assert excinfo.value.code == 2
    assert "--resume requires --store" in capsys.readouterr().err


def test_store_stats_go_to_stderr_not_stdout(seeded_campaign, tmp_path, capsys):
    """The byte-identity contract lives or dies on this routing."""
    store_root = tmp_path / "stats.runstore"
    shutil.copytree(seeded_campaign["store"], store_root)
    args = _campaign_args(
        seeded_campaign["spec_path"],
        tmp_path / "resumed.txt",
        tmp_path / "resumed.json",
        "--store",
        str(store_root),
        "--resume",
    )
    assert main(args) == 0
    captured = capsys.readouterr()
    assert "[store]" in captured.err
    assert "[store]" not in captured.out


@pytest.mark.slow
def test_sigkill_resume_byte_identity(tmp_path):
    """The real thing: SIGKILL a campaign mid-run, resume, compare bytes.

    Mirrors the CI ``store-smoke`` job but stays self-contained so it
    can run anywhere with ``-m slow``.
    """
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(SPEC))
    env = dict(os.environ, PYTHONPATH="src")
    repo = str(Path(__file__).resolve().parents[1])

    def run(*extra, out, json_path):
        cmd = [
            sys.executable,
            "-m",
            "repro.experiments",
            *_campaign_args(spec_path, out, json_path, *extra),
        ]
        subprocess.run(cmd, cwd=repo, env=env, check=True)

    run(out=tmp_path / "base.txt", json_path=tmp_path / "base.json")

    store_root = tmp_path / "killed.runstore"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            *_campaign_args(
                spec_path,
                tmp_path / "dead.txt",
                tmp_path / "dead.json",
                "--store",
                str(store_root),
            ),
        ],
        cwd=repo,
        env=env,
        start_new_session=True,
    )
    ledger_path = store_root / "ledger.sqlite"
    deadline = time.monotonic() + 300.0
    committed = 0
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break  # finished before we could kill it: still a valid resume
            if ledger_path.exists():
                try:
                    conn = sqlite3.connect(str(ledger_path), timeout=5.0)
                    committed = conn.execute(
                        "SELECT COUNT(*) FROM units"
                    ).fetchone()[0]
                    conn.close()
                except sqlite3.Error:
                    committed = 0
            if committed >= 1:
                break
            time.sleep(0.05)
        assert committed >= 1 or proc.poll() is not None
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)

    run(
        "--store",
        str(store_root),
        "--resume",
        out=tmp_path / "resumed.txt",
        json_path=tmp_path / "resumed.json",
    )
    assert (tmp_path / "resumed.txt").read_bytes() == (
        tmp_path / "base.txt"
    ).read_bytes()
    assert (tmp_path / "resumed.json").read_bytes() == (
        tmp_path / "base.json"
    ).read_bytes()

    store = RunStore(str(store_root))
    rows = store.ledger.units()
    assert len(rows) == 2
    assert all(row["executions"] == 1 for row in rows)

"""Mutation smoke tests for the multi-tree resilience gate.

Same contract as :mod:`tests.test_validate_mutations`: plant one
plausible K-tree accounting bug, re-run the ``multitree_resilience``
experiment against a clean baseline built moments earlier, and require
the validate gate to reject it with a machine-readable failure report.
The three planted bugs target the exact seams the subsystem's headline
metrics depend on: blackout intersection, outage-interval clipping, and
the SplitStream home-tree assignment.
"""

import json

import pytest

from repro.experiments.common import clear_caches
from repro.validate.baseline import build_baseline, collect_samples
from repro.validate.gate import run_gate

#: Tiny operating point: crash scenario only, K in {1, 2}, two seeds.
#: Small enough for a clean-baseline + mutated-re-run round trip per
#: test, while keeping nonzero blackout/outage signal at every cell.
TINY_SPEC = {
    "name": "mutation-smoke",
    "population": 500,
    "protocols": ["rost"],
    "tree_counts": [1, 2],
    "root_bandwidth": 4.0,
    "scenarios": [
        {
            "name": "crash",
            "faults": [
                {"kind": "node-crash", "at_frac": 0.45, "count": 8},
                {"kind": "node-crash", "at_frac": 0.7, "count": 8},
            ],
        }
    ],
}

OPERATING_POINT = {"scale": 0.05, "seeds": [1, 2], "kwargs": {"spec": TINY_SPEC}}


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _clean_baseline():
    return build_baseline("multitree_resilience", **OPERATING_POINT)


def _mutated_outcome(baseline):
    """Re-run the experiment (mutation active) and gate it."""
    clear_caches()
    samples = collect_samples(
        baseline.experiment_id, baseline.scale, baseline.seeds, baseline.kwargs
    )
    return run_gate(baseline, samples=samples)


def _assert_structured_failure(payload: dict) -> None:
    json.dumps(payload)  # serializable
    assert payload["passed"] is False
    failures = payload["metric_failures"] + [
        t for t in payload["trends"] if not t["passed"]
    ]
    assert failures
    assert all(f["detail"] for f in failures)


def test_clean_tiny_spec_gate_passes():
    """Sanity: without a mutation the tiny operating point round-trips."""
    baseline = _clean_baseline()
    outcome = _mutated_outcome(baseline)
    assert outcome.passed, outcome.to_payload()


def test_blackout_undercount_caught(monkeypatch):
    """Bug: full-blackout intervals silently dropped (every rate -> 0)."""
    from repro.multitree import metrics

    baseline = _clean_baseline()
    monkeypatch.setattr(
        metrics, "blackout_intervals", lambda per_stripe, low, high: []
    )
    outcome = _mutated_outcome(baseline)
    assert not outcome.passed
    assert any("blackout" in v.path for v in outcome.metric_failures)
    _assert_structured_failure(outcome.to_payload())


def test_stripe_outage_boundary_off_by_one_caught(monkeypatch):
    """Bug: a fencepost in outage clipping skips each member's first
    outage interval, undercounting stripe-outage time and counts."""
    from repro.multitree import metrics

    baseline = _clean_baseline()
    original = metrics.clip_intervals
    monkeypatch.setattr(
        metrics,
        "clip_intervals",
        lambda intervals, low, high: original(intervals, low, high)[1:],
    )
    outcome = _mutated_outcome(baseline)
    assert not outcome.passed
    assert any(
        "stripe_outage" in v.path or "quality" in v.path
        for v in outcome.metric_failures
    )
    _assert_structured_failure(outcome.to_payload())


def test_home_tree_skew_caught(monkeypatch):
    """Bug: every member's home tree collapses to stripe 0, destroying
    the interior-disjoint capacity spread across stripes."""
    from repro.multitree import driver

    baseline = _clean_baseline()
    monkeypatch.setattr(driver, "home_tree", lambda member_id, num_trees: 0)
    outcome = _mutated_outcome(baseline)
    assert not outcome.passed
    _assert_structured_failure(outcome.to_payload())

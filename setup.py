"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that editable installs work on environments whose ``pip``/``setuptools``
cannot build PEP 660 editable wheels offline (no ``wheel`` package and no
network to fetch one).
"""

from setuptools import setup

setup()

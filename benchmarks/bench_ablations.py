"""Ablation benches for the design choices DESIGN.md calls out.

Each bench runs a small-scale comparison isolating one mechanism:

* ROST feature flags — spare-slot promotion, grandparent succession and
  the bandwidth guard;
* MLC selection vs uniformly random recovery groups (same CER striping);
* ELN (upstream recovery) vs every descendant recovering on its own;
* abrupt-only departures vs a graceful fraction.
"""

import dataclasses

import pytest

from repro.config import paper_config
from repro.metrics.report import render_table
from repro.protocols import PROTOCOLS
from repro.protocols.rost import RostProtocol
from repro.recovery.schemes import RecoveryScheme, cer_scheme
from repro.simulation.churn import ChurnSimulation
from repro.simulation.streaming import RecoverySimulation

SCALE = 0.15
SEED = 19


@pytest.fixture(scope="module")
def shared():
    config = paper_config(population=4000, seed=SEED, scale=SCALE)
    sim = ChurnSimulation(config, PROTOCOLS["min-depth"])
    return config, sim.topology, sim.oracle


def _churn(config, topo, oracle, factory, **kwargs):
    return ChurnSimulation(
        config, factory, topology=topo, oracle=oracle, **kwargs
    ).run()


def test_rost_feature_flags(benchmark, shared):
    config, topo, oracle = shared
    variants = {
        "full rost": {},
        "no promotion": {"promote_into_spare": False},
        "no succession": {"grandparent_rejoin": False},
        "no bw guard": {"bandwidth_guard": False},
        "swaps only": {"promote_into_spare": False, "grandparent_rejoin": False},
    }

    def run_all():
        rows = []
        for label, flags in variants.items():
            result = _churn(
                config, topo, oracle, lambda ctx, f=flags: RostProtocol(ctx, **f)
            )
            rows.append(
                [
                    label,
                    result.avg_disruptions_per_node,
                    result.avg_service_delay_ms,
                    result.avg_optimization_reconnections,
                ]
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(
        render_table(
            f"ROST ablations (scale {SCALE}, population "
            f"{config.workload.target_population})",
            ["variant", "disr/node", "delay ms", "reconn/node"],
            rows,
        )
    )
    table = {row[0]: row for row in rows}
    assert all(row[1] >= 0 for row in rows)
    # the swaps-only variant produces a taller tree than full ROST
    assert table["full rost"][2] <= table["swaps only"][2] * 1.5 + 50


def test_mlc_vs_random_groups(benchmark, shared):
    config, topo, oracle = shared
    schemes = [
        cer_scheme(3),
        RecoveryScheme(
            name="cer-k3-random", group_size=3, use_mlc=False, striped=True,
            buffer_s=5.0,
        ),
    ]

    def run():
        sim = RecoverySimulation(
            config, PROTOCOLS["min-depth"], schemes, topology=topo, oracle=oracle
        )
        return sim.run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    mlc = result.schemes["cer-k3-b5"]
    rnd = result.schemes["cer-k3-random"]
    print()
    print(
        render_table(
            "MLC vs random recovery groups (CER, k=3)",
            ["selection", "starving %", "mean coverage"],
            [
                ["mlc", mlc.avg_starving_ratio_pct, mlc.mean_coverage],
                ["random", rnd.avg_starving_ratio_pct, rnd.mean_coverage],
            ],
        )
    )
    # minimum-loss-correlation selection never does worse than random
    assert mlc.avg_starving_ratio_pct <= rnd.avg_starving_ratio_pct * 1.25 + 0.05


def test_eln_ablation(benchmark, shared):
    config, topo, oracle = shared
    schemes = [cer_scheme(3), cer_scheme(3, eln=False)]

    def run():
        sim = RecoverySimulation(
            config, PROTOCOLS["min-depth"], schemes, topology=topo, oracle=oracle
        )
        return sim.run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    with_eln = result.schemes["cer-k3-b5"]
    without = result.schemes["cer-k3-b5-noeln"]
    print()
    print(
        render_table(
            "ELN (upstream recovery) vs independent per-member recovery",
            ["variant", "starving %", "episodes"],
            [
                ["eln", with_eln.avg_starving_ratio_pct, with_eln.episodes],
                ["no eln", without.avg_starving_ratio_pct, without.episodes],
            ],
        )
    )
    # without ELN every affected member runs its own episode: at least as
    # many episodes (and strictly more whenever subtrees are non-trivial)
    assert without.episodes >= with_eln.episodes


def test_graceful_departure_fraction(benchmark, shared):
    config, topo, oracle = shared

    def run_all():
        rows = []
        for fraction in (0.0, 0.5, 1.0):
            result = _churn(
                config,
                topo,
                oracle,
                PROTOCOLS["min-depth"],
                graceful_departure_fraction=fraction,
            )
            rows.append([fraction, result.metrics.disruption_events])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(
        render_table(
            "Disruption events vs graceful-departure fraction (min-depth)",
            ["graceful fraction", "disruption events"],
            rows,
        )
    )
    events = [row[1] for row in rows]
    assert events[0] >= events[1] >= events[2]
    assert events[2] == 0

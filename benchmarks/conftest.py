"""Benchmark configuration.

Each figure benchmark runs its experiment once (rounds=1) at a reduced
scale — the point is to regenerate the paper's tables and record the
end-to-end cost, not to average micro-timings.  Caches are cleared before
each figure so the recorded time is the figure's true cost.
"""

from __future__ import annotations

import pytest

from repro.experiments import common

#: Populations and underlay are scaled by this factor relative to the paper.
BENCH_SCALE = 0.1
BENCH_SEED = 7


@pytest.fixture()
def fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


def run_figure(benchmark, experiment_id: str, **kwargs):
    """Run one registered experiment under the benchmark timer and print
    its table so the bench log doubles as the reproduction record."""
    from repro.experiments import get_experiment

    experiment = get_experiment(experiment_id)
    params = {"scale": BENCH_SCALE, "seed": BENCH_SEED, **kwargs}
    result = benchmark.pedantic(
        lambda: experiment.run(**params), rounds=1, iterations=1
    )
    print()
    print(result.table)
    return result

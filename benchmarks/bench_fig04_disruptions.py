"""Figure 4 benchmark: disruptions per node across sizes and protocols."""

from benchmarks.conftest import run_figure


def test_fig04_disruptions(benchmark, fresh_caches):
    result = run_figure(benchmark, "fig04")
    series = result.data["series"]
    # Headline shape: at the largest size, ROST disrupts less than the
    # structure-blind distributed baselines.
    assert series["rost"][-1] <= series["min-depth"][-1]
    assert series["rost"][-1] <= series["longest-first"][-1]
    assert all(v >= 0 for vs in series.values() for v in vs)

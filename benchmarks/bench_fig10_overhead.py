"""Figure 10 benchmark: protocol overhead vs size."""

from benchmarks.conftest import run_figure


def test_fig10_overhead(benchmark, fresh_caches):
    result = run_figure(benchmark, "fig10")
    series = result.data["series"]
    # Join-only algorithms restructure nothing.
    assert all(v == 0 for v in series["min-depth"])
    assert all(v == 0 for v in series["longest-first"])
    # ROST needs far less than one reconnection per member lifetime and
    # stays below the centralized ordered baselines.
    assert series["rost"][-1] < 1.0
    assert series["rost"][-1] <= series["relaxed-bo"][-1]
    assert series["rost"][-1] <= series["relaxed-to"][-1]

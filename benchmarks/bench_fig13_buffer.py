"""Figure 13 benchmark: starving time ratio vs buffer size."""

from benchmarks.conftest import run_figure


def test_fig13_buffer(benchmark, fresh_caches):
    result = run_figure(benchmark, "fig13")
    series = result.data["series"]
    for name, values in series.items():
        # a larger buffer never increases starving (tolerate tiny noise)
        assert values[-1] <= values[0] + 0.05, name
    # bigger groups dominate at every buffer size
    assert all(a <= b + 0.05 for a, b in zip(series["group=3"], series["group=1"]))

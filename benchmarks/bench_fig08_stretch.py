"""Figure 8 benchmark: average network stretch vs size."""

from benchmarks.conftest import run_figure


def test_fig08_stretch(benchmark, fresh_caches):
    result = run_figure(benchmark, "fig08")
    series = result.data["series"]
    assert all(v >= 1.0 for vs in series.values() for v in vs)
    assert series["rost"][-1] <= series["longest-first"][-1]

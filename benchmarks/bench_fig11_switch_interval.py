"""Figure 11 benchmark: the ROST switching-interval sweep."""

from benchmarks.conftest import run_figure


def test_fig11_switch_interval(benchmark, fresh_caches):
    result = run_figure(benchmark, "fig11")
    series = result.data["series"]
    # Overhead stays tiny even at the most aggressive interval.
    assert max(series["reconnections/node"]) < 1.0
    assert all(v > 0 for v in series["service delay (ms)"])

"""Micro-benchmarks of the library's hot paths.

These time the primitives the figure experiments spend their cycles in:
delay-oracle queries, tree restructures, MLC group selection and the
packet-level episode pricing.
"""

import numpy as np
import pytest

from repro.config import TopologyConfig
from repro.overlay.node import OverlayNode
from repro.overlay.tree import MulticastTree
from repro.recovery.episode import RepairSource, starvation_episode
from repro.recovery.mlc import PartialTreeView, select_mlc_group
from repro.sim.engine import Simulator
from repro.topology.routing import DelayOracle
from repro.topology.transit_stub import generate_transit_stub


@pytest.fixture(scope="module")
def topo_oracle():
    cfg = TopologyConfig(
        transit_domains=4,
        transit_nodes_per_domain=6,
        stub_domains_per_transit=3,
        stub_nodes_per_domain=8,
        seed=5,
    )
    topo = generate_transit_stub(cfg)
    return topo, DelayOracle(topo)


def test_oracle_delay_queries(benchmark, topo_oracle):
    topo, oracle = topo_oracle
    rng = np.random.default_rng(0)
    pairs = rng.integers(0, topo.num_nodes, size=(1000, 2))

    def query_block():
        total = 0.0
        for a, b in pairs:
            total += oracle.delay_ms(int(a), int(b))
        return total

    assert benchmark(query_block) > 0


def test_topology_generation(benchmark):
    cfg = TopologyConfig(
        transit_domains=3,
        transit_nodes_per_domain=5,
        stub_domains_per_transit=2,
        stub_nodes_per_domain=8,
        seed=11,
    )
    topo = benchmark(lambda: generate_transit_stub(cfg))
    assert topo.num_nodes == cfg.total_nodes


def _build_tree(num_members=500):
    root = OverlayNode(0, 0, 100.0, 100, 0.0, is_root=True)
    tree = MulticastTree(root)
    rng = np.random.default_rng(1)
    for member_id in range(1, num_members + 1):
        node = OverlayNode(member_id, member_id, 3.0, 3, 0.0)
        tree.add_member(node)
        parents = [n for n in tree.attached_nodes() if n.spare_degree > 0]
        tree.attach(node, parents[int(rng.integers(0, len(parents)))])
    return tree


def test_tree_attach_detach_cycle(benchmark):
    tree = _build_tree(300)
    victims = [n for n in tree.attached_nodes() if not n.is_root and n.children][:20]

    def churn_cycle():
        for victim in victims:
            parent = victim.parent
            tree.detach(victim)
            tree.attach(victim, parent)

    benchmark(churn_cycle)
    tree.check_invariants()


def test_mlc_group_selection(benchmark):
    tree = _build_tree(400)
    members = [n for n in tree.attached_nodes() if not n.is_root][:100]
    view = PartialTreeView.from_members(members)
    rng = np.random.default_rng(2)
    group = benchmark(lambda: select_mlc_group(view, 3, rng))
    assert 0 < len(group) <= 3


def test_starvation_episode_pricing(benchmark):
    sources = [
        RepairSource(member_id=i, rate_pps=3.0, has_data=True, delay_ms=10.0 * i)
        for i in range(1, 5)
    ]
    outcome = benchmark(
        lambda: starvation_episode(
            gap_packets=150,
            packet_rate_pps=10.0,
            buffer_ahead_s=5.0,
            detect_s=0.5,
            request_hop_s=0.5,
            sources=sources,
            striped=True,
        )
    )
    assert outcome.gap_packets == 150


def test_event_queue_throughput(benchmark):
    def pump():
        sim = Simulator()
        counter = [0]

        def tick():
            counter[0] += 1
            if counter[0] < 5000:
                sim.schedule_in(1.0, tick)

        sim.schedule_in(1.0, tick)
        sim.run()
        return counter[0]

    assert benchmark(pump) == 5000


def test_event_queue_throughput_concurrent(benchmark):
    """Throughput with a deep heap — the shape real simulations have.

    Thousands of timers pending at once (per-member detection, switching
    and gossip timers) make heap sift comparisons the dominant cost, which
    a chain-shaped bench with a near-empty heap never exercises.
    """

    def pump(timers=1000, total=20000):
        sim = Simulator()
        fired = [0]

        def tick(i):
            fired[0] += 1
            if fired[0] < total:
                sim.schedule_in(1.0 + (i % 7) * 0.1, lambda: tick(i))

        for i in range(timers):
            sim.schedule_in(1.0 + (i % 7) * 0.1, lambda i=i: tick(i))
        sim.run()
        return fired[0]

    # When the cap is reached the 999 other timers still pending in the
    # heap drain (firing once each without rescheduling), so the total
    # fired count is total + timers - 1.
    assert benchmark(pump) == 20000 + 1000 - 1

"""Figure 12 benchmark: starving time ratio vs CER group size."""

from benchmarks.conftest import run_figure


def test_fig12_group_size(benchmark, fresh_caches):
    result = run_figure(benchmark, "fig12")
    series = result.data["series"]
    # More recovery nodes never hurt; the largest network shows the
    # clearest separation.
    assert series["4"][-1] <= series["1"][-1]
    assert series["3"][-1] <= series["1"][-1]
    assert all(0.0 <= v <= 100.0 for vs in series.values() for v in vs)

"""Machine-readable performance baseline emitter.

Runs every registered figure experiment once (caches cleared in between,
so each number is the figure's true end-to-end cost) plus the kernel
event-throughput microbenchmarks, and writes one JSON document::

    PYTHONPATH=src python benchmarks/report.py --scale 0.1 --out BENCH_PR1.json

The checked-in ``BENCH_*.json`` files form the perf-regression trajectory
future PRs are judged against: a PR claiming a hot-path win should show
it here, and a PR must not silently regress the recorded numbers.

Schema (v1)::

    {
      "meta":    {... machine/run description ...},
      "kernel":  {"chain_events_per_sec": float,
                  "concurrent_events_per_sec": float},
      "figures": {"fig04": {"wall_s": float}, ...},
      "total_figures_wall_s": float
    }

The *chain* kernel shape keeps a single pending timer (pure
schedule/pop overhead); the *concurrent* shape holds thousands of
pending timers, which is what real runs look like (every member has
detection/switch/gossip timers in flight) and is where heap-comparison
cost dominates.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

SCHEMA_VERSION = 1


def bench_kernel_chain(total: int = 200_000) -> float:
    """Events/sec with one pending timer (schedule/pop ping-pong)."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    counter = [0]

    def tick():
        counter[0] += 1
        if counter[0] < total:
            sim.schedule_in(1.0, tick)

    sim.schedule_in(1.0, tick)
    started = time.perf_counter()
    sim.run()
    return total / (time.perf_counter() - started)


def bench_kernel_concurrent(timers: int = 2_000, total: int = 200_000) -> float:
    """Events/sec with ``timers`` concurrent periodic timers in the heap."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    fired = [0]

    def tick(i: int):
        fired[0] += 1
        if fired[0] < total:
            sim.schedule_in(1.0 + (i % 7) * 0.1, lambda: tick(i))

    for i in range(timers):
        sim.schedule_in(1.0 + (i % 7) * 0.1, lambda i=i: tick(i))
    started = time.perf_counter()
    sim.run()
    return total / (time.perf_counter() - started)


def bench_figures(scale: float, seed: int) -> Dict[str, Dict[str, float]]:
    from repro.experiments import common, list_experiments
    from repro.sim.engine import total_events_processed

    figures: Dict[str, Dict[str, float]] = {}
    for experiment in list_experiments():
        common.clear_caches()
        events_before = total_events_processed()
        started = time.perf_counter()
        experiment.run(scale=scale, seed=seed)
        wall = time.perf_counter() - started
        # In-process event count; a --jobs > 1 run dispatches most events
        # in workers, so this is only the parent's share there (meta.jobs
        # records which regime produced the numbers).
        events = total_events_processed() - events_before
        figures[experiment.experiment_id] = {"wall_s": round(wall, 3),
                                             "events": events}
        print(f"  {experiment.experiment_id:16s} {wall:8.2f}s "
              f"{events:>10d} events", flush=True)
    common.clear_caches()
    return figures


def best_of(func, repeats: int = 3) -> float:
    return max(func() for _ in range(repeats))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=str, default="BENCH_PR1.json")
    parser.add_argument(
        "--skip-figures",
        action="store_true",
        help="only run the kernel microbenchmarks (fast smoke)",
    )
    args = parser.parse_args(argv)

    print("kernel microbenchmarks ...", flush=True)
    chain = best_of(bench_kernel_chain)
    concurrent = best_of(bench_kernel_concurrent)
    print(f"  chain       {chain:12.0f} events/s")
    print(f"  concurrent  {concurrent:12.0f} events/s", flush=True)

    figures: Dict[str, Dict[str, float]] = {}
    if not args.skip_figures:
        print(f"figure suite at --scale {args.scale} ...", flush=True)
        figures = bench_figures(args.scale, args.seed)

    from repro.experiments.pool import resolve_jobs
    from repro.obs.capture import obs_env

    obs_flags = obs_env()
    report = {
        "meta": {
            "schema_version": SCHEMA_VERSION,
            "generated_unix": int(time.time()),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "scale": args.scale,
            "seed": args.seed,
            # Comparability guards: a baseline produced with a different
            # worker count or with observability overhead enabled is not
            # an apples-to-apples reference.
            "jobs": resolve_jobs(None),
            "obs_enabled": bool(obs_flags),
            "obs_flags": obs_flags,
        },
        "kernel": {
            "chain_events_per_sec": round(chain),
            "concurrent_events_per_sec": round(concurrent),
        },
        "figures": figures,
        "total_figures_wall_s": round(
            sum(f["wall_s"] for f in figures.values()), 3
        ),
    }
    tmp_path = args.out + ".tmp"
    with open(tmp_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    os.replace(tmp_path, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

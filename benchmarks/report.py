"""Machine-readable performance baseline emitter.

Runs every registered figure experiment once (caches cleared in between,
so each number is the figure's true end-to-end cost) plus the kernel
event-throughput microbenchmarks, and writes one JSON document::

    PYTHONPATH=src python benchmarks/report.py --scale 0.1 --out BENCH_PR1.json

The checked-in ``BENCH_*.json`` files form the perf-regression trajectory
future PRs are judged against: a PR claiming a hot-path win should show
it here, and a PR must not silently regress the recorded numbers.

Schema (v1)::

    {
      "meta":    {... machine/run description ...},
      "kernel":  {"chain_events_per_sec": float,
                  "concurrent_events_per_sec": float},
      "figures": {"fig04": {"wall_s": float, "events": int,
                            "cache": {"churn_hits": int, ...}}, ...},
      "total_figures_wall_s": float,
      "sweep":   {"jobs": int, "wall_s": float, "figures": int,
                  "unit_backed_figures": int, "unit_refs": int,
                  "unique_units": int, "cache": {...}}
    }

The ``figures`` section isolates each figure (caches cleared in
between); ``sweep`` is the deployment shape — the whole campaign in one
batch through the sweep-unit scheduler, where cross-figure duplicate
simulations are deduplicated to unique units and executed once.  Its
``cache`` counters are the parent-process run-cache hits observed while
demuxing figures from unit payloads, i.e. direct evidence of how much
work the dedup plan avoided.

The *chain* kernel shape keeps a single pending timer (pure
schedule/pop overhead); the *concurrent* shape holds thousands of
pending timers, which is what real runs look like (every member has
detection/switch/gossip timers in flight) and is where heap-comparison
cost dominates.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time
from typing import Dict

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

SCHEMA_VERSION = 1


def bench_kernel_chain(total: int = 200_000) -> float:
    """Events/sec with one pending timer (schedule/pop ping-pong)."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    counter = [0]

    def tick():
        counter[0] += 1
        if counter[0] < total:
            sim.schedule_in(1.0, tick)

    sim.schedule_in(1.0, tick)
    started = time.perf_counter()
    sim.run()
    return total / (time.perf_counter() - started)


def bench_kernel_concurrent(timers: int = 2_000, total: int = 200_000) -> float:
    """Events/sec with ``timers`` concurrent periodic timers in the heap."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    fired = [0]

    def tick(i: int):
        fired[0] += 1
        if fired[0] < total:
            sim.schedule_in(1.0 + (i % 7) * 0.1, lambda: tick(i))

    for i in range(timers):
        sim.schedule_in(1.0 + (i % 7) * 0.1, lambda i=i: tick(i))
    started = time.perf_counter()
    sim.run()
    return total / (time.perf_counter() - started)


def bench_figures(scale: float, seed: int) -> Dict[str, Dict[str, float]]:
    from repro.experiments import common, list_experiments
    from repro.sim.engine import total_events_processed

    figures: Dict[str, Dict[str, float]] = {}
    for experiment in list_experiments():
        common.clear_caches()
        stats_before = common.cache_stats()
        events_before = total_events_processed()
        started = time.perf_counter()
        experiment.run(scale=scale, seed=seed)
        wall = time.perf_counter() - started
        # In-process event count; a --jobs > 1 run dispatches most events
        # in workers, so this is only the parent's share there (meta.jobs
        # records which regime produced the numbers).
        events = total_events_processed() - events_before
        stats_after = common.cache_stats()
        cache = {name: stats_after[name] - stats_before.get(name, 0)
                 for name in stats_after}
        figures[experiment.experiment_id] = {"wall_s": round(wall, 3),
                                             "events": events,
                                             "cache": cache}
        print(f"  {experiment.experiment_id:16s} {wall:8.2f}s "
              f"{events:>10d} events", flush=True)
    common.clear_caches()
    return figures


def bench_sweep(scale: float, seed: int, jobs: int) -> Dict[str, object]:
    """One full campaign through the sweep-unit scheduler.

    Unlike :func:`bench_figures` (caches cleared per figure, so each
    number is that figure's standalone cost) this is the deployment
    shape: every figure in one batch, deduplicated to unique simulation
    units, each unit executed once and the figures demuxed from the
    payloads.  The recorded ``cache`` counters come from the parent
    process after the run — every demux hit is a simulation the dedup
    plan did not repeat.
    """
    from repro.experiments import common, list_experiments
    from repro.experiments.pool import ExperimentJob, run_jobs
    from repro.experiments.units import units_for

    figure_ids = [e.experiment_id for e in list_experiments()]
    unit_refs = 0
    unit_backed = 0
    unique = set()
    for figure_id in figure_ids:
        units = units_for(figure_id, scale=scale, seed=seed)
        if units is None:
            continue
        unit_backed += 1
        unit_refs += len(units)
        unique.update(unit.cache_key() for unit in units)

    common.clear_caches()
    # The figure pass above leaves a large dead heap; collect it so the
    # sweep timing measures scheduling, not the previous pass's garbage.
    gc.collect()
    batch = [ExperimentJob.make(figure_id, scale=scale, seed=seed)
             for figure_id in figure_ids]
    started = time.perf_counter()
    run_jobs(batch, jobs)
    wall = time.perf_counter() - started
    stats = common.cache_stats()
    common.clear_caches()
    print(f"  all ({len(batch)} figures) --jobs {jobs}: {wall:.2f}s, "
          f"{len(unique)} unique units for {unit_refs} unit refs, "
          f"cache {stats}", flush=True)
    return {
        "jobs": jobs,
        "wall_s": round(wall, 3),
        "figures": len(batch),
        "unit_backed_figures": unit_backed,
        "unit_refs": unit_refs,
        "unique_units": len(unique),
        "cache": stats,
    }


def best_of(func, repeats: int = 3) -> float:
    return max(func() for _ in range(repeats))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=str, default="BENCH_PR1.json")
    parser.add_argument(
        "--skip-figures",
        action="store_true",
        help="only run the kernel microbenchmarks (fast smoke)",
    )
    parser.add_argument(
        "--sweep-jobs",
        type=int,
        default=4,
        help="--jobs for the whole-campaign sweep pass (default 4)",
    )
    parser.add_argument(
        "--skip-sweep",
        action="store_true",
        help="skip the whole-campaign sweep pass",
    )
    args = parser.parse_args(argv)

    print("kernel microbenchmarks ...", flush=True)
    chain = best_of(bench_kernel_chain)
    concurrent = best_of(bench_kernel_concurrent)
    print(f"  chain       {chain:12.0f} events/s")
    print(f"  concurrent  {concurrent:12.0f} events/s", flush=True)

    figures: Dict[str, Dict[str, float]] = {}
    sweep: Dict[str, object] = {}
    if not args.skip_figures:
        print(f"figure suite at --scale {args.scale} ...", flush=True)
        figures = bench_figures(args.scale, args.seed)
        if not args.skip_sweep:
            print(f"campaign sweep at --jobs {args.sweep_jobs} ...", flush=True)
            sweep = bench_sweep(args.scale, args.seed, args.sweep_jobs)

    from repro.experiments.pool import resolve_jobs
    from repro.obs.capture import obs_env

    obs_flags = obs_env()
    report = {
        "meta": {
            "schema_version": SCHEMA_VERSION,
            "generated_unix": int(time.time()),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "scale": args.scale,
            "seed": args.seed,
            # Comparability guards: a baseline produced with a different
            # worker count or with observability overhead enabled is not
            # an apples-to-apples reference.
            "jobs": resolve_jobs(None),
            "obs_enabled": bool(obs_flags),
            "obs_flags": obs_flags,
        },
        "kernel": {
            "chain_events_per_sec": round(chain),
            "concurrent_events_per_sec": round(concurrent),
        },
        "figures": figures,
        "total_figures_wall_s": round(
            sum(f["wall_s"] for f in figures.values()), 3
        ),
    }
    if sweep:
        report["sweep"] = sweep
    tmp_path = args.out + ".tmp"
    with open(tmp_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    os.replace(tmp_path, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

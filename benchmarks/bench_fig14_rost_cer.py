"""Figure 14 benchmark: the combined ROST+CER system vs the baseline."""

from benchmarks.conftest import run_figure


def test_fig14_rost_cer(benchmark, fresh_caches):
    result = run_figure(benchmark, "fig14", replicas=2)
    for k, row in result.data.items():
        rost_mean, _ = row["rost_cer"]
        base_mean, _ = row["mindepth_ss"]
        assert rost_mean <= base_mean, f"group {k}"

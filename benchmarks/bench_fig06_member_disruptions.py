"""Figure 6 benchmark: the typical member's cumulative disruptions."""

from benchmarks.conftest import run_figure


def test_fig06_member_disruptions(benchmark, fresh_caches):
    result = run_figure(benchmark, "fig06")
    series = result.data["series"]
    for name, values in series.items():
        assert all(a <= b for a, b in zip(values, values[1:])), name  # cumulative

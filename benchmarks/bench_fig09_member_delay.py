"""Figure 9 benchmark: the typical member's service delay over time."""

import math

from benchmarks.conftest import run_figure


def test_fig09_member_delay(benchmark, fresh_caches):
    result = run_figure(benchmark, "fig09")
    series = result.data["series"]
    for name, values in series.items():
        finite = [v for v in values if not math.isnan(v)]
        assert finite, name
        assert all(v > 0 for v in finite), name

"""Diff two ``BENCH_*.json`` baselines and gate on regressions.

Usage::

    PYTHONPATH=src python benchmarks/compare.py BENCH_PR6.json BENCH_PR10.json
    python benchmarks/compare.py OLD.json NEW.json --max-regression 30

Prints a percent-change table for the kernel event rates and every
figure's wall clock / event count, plus the total-suite and sweep
headlines, then applies a regression gate:

* kernel rates (higher is better) must not drop more than
  ``--max-regression`` percent;
* per-figure wall clock (lower is better) must not grow more than
  ``--max-regression`` percent — figures whose baseline wall is under
  ``--wall-floor`` seconds are reported but never gated (percent noise
  on a 60 ms figure is meaningless);
* the suite total wall is gated like a figure.

Exit-code contract (CI scripts rely on it):

* ``0`` — baselines compared, no gated regression;
* ``1`` — at least one gated regression;
* ``2`` — usage or schema error (missing file, malformed JSON, wrong
  schema version, missing required sections).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

EXPECTED_SCHEMA = 1


class SchemaError(Exception):
    """The baseline file exists but does not look like a bench report."""


def load_report(path: str) -> dict:
    try:
        with open(path) as handle:
            report = json.load(handle)
    except OSError as exc:
        raise SchemaError(f"{path}: cannot read ({exc})") from exc
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(report, dict):
        raise SchemaError(f"{path}: top level is not an object")
    version = report.get("meta", {}).get("schema_version")
    if version != EXPECTED_SCHEMA:
        raise SchemaError(
            f"{path}: schema_version {version!r}, expected {EXPECTED_SCHEMA}"
        )
    for section in ("kernel", "figures"):
        if not isinstance(report.get(section), dict):
            raise SchemaError(f"{path}: missing '{section}' section")
    return report


def pct_change(old: float, new: float) -> Optional[float]:
    if not old:
        return None
    return (new - old) / old * 100.0


def fmt_pct(change: Optional[float]) -> str:
    if change is None:
        return "     n/a"
    return f"{change:+7.1f}%"


def compare(
    old: dict, new: dict, max_regression: float, wall_floor: float
) -> Tuple[List[str], List[str]]:
    """Returns (table lines, gated regression descriptions)."""
    lines: List[str] = []
    failures: List[str] = []

    lines.append("kernel (events/s, higher is better)")
    for metric in sorted(set(old["kernel"]) | set(new["kernel"])):
        before = old["kernel"].get(metric)
        after = new["kernel"].get(metric)
        if before is None or after is None:
            lines.append(f"  {metric:28s} only in one baseline")
            continue
        change = pct_change(before, after)
        lines.append(
            f"  {metric:28s} {before:12.0f} -> {after:12.0f}  {fmt_pct(change)}"
        )
        if change is not None and change < -max_regression:
            failures.append(f"kernel {metric}: {change:+.1f}%")

    lines.append("figures (wall seconds, lower is better)")
    figure_ids = sorted(set(old["figures"]) | set(new["figures"]))
    for figure_id in figure_ids:
        before = old["figures"].get(figure_id)
        after = new["figures"].get(figure_id)
        if before is None:
            lines.append(f"  {figure_id:16s} new figure "
                         f"({after['wall_s']:.2f}s)")
            continue
        if after is None:
            lines.append(f"  {figure_id:16s} removed "
                         f"(was {before['wall_s']:.2f}s)")
            continue
        change = pct_change(before["wall_s"], after["wall_s"])
        events_delta = after.get("events", 0) - before.get("events", 0)
        gated = before["wall_s"] >= wall_floor
        note = "" if gated else "  (below wall floor, not gated)"
        lines.append(
            f"  {figure_id:16s} {before['wall_s']:8.2f}s -> "
            f"{after['wall_s']:8.2f}s  {fmt_pct(change)}  "
            f"events {events_delta:+d}{note}"
        )
        if gated and change is not None and change > max_regression:
            failures.append(f"figure {figure_id} wall: {change:+.1f}%")

    before_total = old.get("total_figures_wall_s")
    after_total = new.get("total_figures_wall_s")
    if before_total and after_total:
        change = pct_change(before_total, after_total)
        lines.append(
            f"total figures wall   {before_total:8.2f}s -> "
            f"{after_total:8.2f}s  {fmt_pct(change)}"
        )
        if change is not None and change > max_regression:
            failures.append(f"total figures wall: {change:+.1f}%")

    old_sweep = old.get("sweep")
    new_sweep = new.get("sweep")
    if new_sweep:
        lines.append(
            f"sweep (--jobs {new_sweep['jobs']}): {new_sweep['wall_s']:.2f}s, "
            f"{new_sweep['unique_units']} unique units for "
            f"{new_sweep['unit_refs']} refs"
        )
        if old_sweep and old_sweep.get("jobs") == new_sweep.get("jobs"):
            change = pct_change(old_sweep["wall_s"], new_sweep["wall_s"])
            lines.append(
                f"sweep wall           {old_sweep['wall_s']:8.2f}s -> "
                f"{new_sweep['wall_s']:8.2f}s  {fmt_pct(change)}"
            )
            if change is not None and change > max_regression:
                failures.append(f"sweep wall: {change:+.1f}%")
        elif old_sweep:
            lines.append("sweep wall           not comparable "
                         "(different --jobs)")

    return lines, failures


def comparability_warnings(old: dict, new: dict) -> List[str]:
    warnings = []
    for field in ("scale", "seed", "jobs", "obs_enabled", "cpu_count"):
        before = old.get("meta", {}).get(field)
        after = new.get("meta", {}).get(field)
        if before != after:
            warnings.append(
                f"meta.{field} differs ({before!r} vs {after!r}) — "
                "numbers may not be apples-to-apples"
            )
    return warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_*.json (the reference)")
    parser.add_argument("new", help="candidate BENCH_*.json (the new numbers)")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=30.0,
        help="percent change beyond which the gate fails (default 30)",
    )
    parser.add_argument(
        "--wall-floor",
        type=float,
        default=0.5,
        help="figures with baseline wall below this many seconds are "
        "reported but not gated (default 0.5)",
    )
    args = parser.parse_args(argv)

    try:
        old = load_report(args.old)
        new = load_report(args.new)
    except SchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"comparing {args.old} -> {args.new} "
          f"(gate: {args.max_regression:.0f}%)")
    for warning in comparability_warnings(old, new):
        print(f"warning: {warning}")
    lines, failures = compare(old, new, args.max_regression, args.wall_floor)
    for line in lines:
        print(line)
    if failures:
        print(f"REGRESSION ({len(failures)} gated):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("OK: no gated regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 7 benchmark: average service delay vs size."""

from benchmarks.conftest import run_figure


def test_fig07_delay(benchmark, fresh_caches):
    result = run_figure(benchmark, "fig07")
    series = result.data["series"]
    assert all(v > 0 for vs in series.values() for v in vs)
    # ROST's tree is shorter than the other distributed algorithms' at the
    # largest size.
    assert series["rost"][-1] <= series["min-depth"][-1]
    assert series["rost"][-1] <= series["longest-first"][-1]

"""Figure 5 benchmark: disruption-count CDFs."""

from benchmarks.conftest import run_figure


def test_fig05_cdf(benchmark, fresh_caches):
    result = run_figure(benchmark, "fig05")
    series = result.data["series"]
    for name, fractions in series.items():
        # CDFs are monotone and end at 100%
        assert all(a <= b + 1e-9 for a, b in zip(fractions, fractions[1:])), name
        assert fractions[-1] == 100.0
    # ROST's CDF dominates the reliability-blind baselines at the median
    assert series["rost"][2] >= series["min-depth"][2]
